#ifndef RAQO_CORE_RAQO_COST_EVALUATOR_H_
#define RAQO_CORE_RAQO_COST_EVALUATOR_H_

#include <array>
#include <memory>
#include <optional>

#include "core/plan_cache.h"
#include "core/resource_planner.h"
#include "cost/cost_model.h"
#include "cost/model_bounds.h"
#include "optimizer/cost_evaluator.h"
#include "resource/cluster_conditions.h"
#include "resource/pricing.h"

namespace raqo::core {

/// Resource-search strategies of cost-based RAQO (Section VI-B), plus
/// the accelerated-stride extension for very large clusters and a
/// pool-backed brute force that splits the grid across worker threads.
enum class ResourceSearch {
  kBruteForce,
  kHillClimb,
  kAcceleratedHillClimb,
  kParallelBruteForce,
  /// The switch-point-aware incremental grid search: bit-identical to
  /// kBruteForce but warm-started from the previous search's optimum
  /// and dominance-pruned through sound cost-model lower bounds
  /// (SwitchAwareGridResourcePlanner, docs/PERF.md). Models whose
  /// feature set fails monotonicity validation fall back to the plain
  /// exhaustive sweep and bump planner.resource.monotonicity_rejected.
  kSwitchAwareGrid,
};

/// Configuration of the RAQO cost evaluator.
struct RaqoEvaluatorOptions {
  ResourceSearch search = ResourceSearch::kHillClimb;
  /// Worker threads of the kParallelBruteForce search (ignored by the
  /// other strategies). Only consulted when no `search_pool` is
  /// injected: it sizes the evaluator-owned fallback pool.
  int parallel_search_threads = 4;

  /// Externally owned pool the kParallelBruteForce search runs on (must
  /// outlive the evaluator). The concurrent runner and the planning
  /// server inject one pool shared by all their planners; without it,
  /// every evaluator would spawn a private pool — N planner workers
  /// times M search threads — and pay pool construction per planner.
  /// nullptr falls back to an evaluator-owned pool of
  /// `parallel_search_threads` workers.
  ThreadPool* search_pool = nullptr;

  /// Grids smaller than this many cells are scanned sequentially by the
  /// kParallelBruteForce search (see
  /// ParallelBruteForceResourcePlanner::kDefaultMinParallelCells); the
  /// result is bit-identical either way. 0 forces the parallel path.
  int64_t min_parallel_grid_cells =
      ParallelBruteForceResourcePlanner::kDefaultMinParallelCells;

  /// Write-behind batching of inserts into a *shared* exact-mode cache:
  /// computed plans are staged privately and flushed to the shared
  /// cache in batches of this many entries (and at the end of every
  /// query), so shard locks are taken per batch instead of per insert.
  /// Lookups consult the private staging cache first — repeated
  /// data characteristics within a query (the common case under
  /// Selinger's DP) stop touching shared locks entirely. Exact-mode
  /// entries always reproduce what recomputation would return, so
  /// results stay bit-identical to write-through; only hit/miss
  /// *counters* of the shared cache shift. 0 disables batching
  /// (write-through); similarity lookup modes always write through.
  size_t shared_insert_batch = 32;

  /// Resource-plan caching (off by default, matching the paper's setup
  /// of clearing the cache before each query unless stated otherwise).
  bool use_cache = false;
  CacheLookupMode cache_mode = CacheLookupMode::kNearestNeighbor;
  /// The "data delta threshold" of Figure 14, in GB of smaller-input
  /// size.
  double cache_threshold_gb = 0.01;
  CacheIndexKind cache_index = CacheIndexKind::kSortedArray;
  /// Lock stripes of the evaluator-owned cache; 0 builds the
  /// single-threaded layout. Shared caches (ShareCache) bring their own
  /// sharding.
  size_t cache_shards = 0;

  /// Cells per dominance-pruning block of the kSwitchAwareGrid search
  /// (ignored by the other strategies).
  int64_t switch_block_cells =
      SwitchAwareGridResourcePlanner::kDefaultBlockCells;

  /// Objective weight for resource planning: 1.0 plans resources for pure
  /// execution time, 0.0 for pure monetary cost.
  double time_weight = 1.0;

  /// Broadcast-join feasibility bound: the build side must satisfy
  /// ss <= factor * container size. The resource search is restricted to
  /// the feasible sub-grid (the climb then starts from the smallest
  /// *feasible* configuration).
  double bhj_capacity_factor = 1.14;
};

/// The heart of cost-based RAQO (Section VI-C): a PlanCostEvaluator whose
/// getPlanCost "first performs the resource planning (or lookup in the
/// cache) and then returns the sub-plan cost". Plugging this evaluator
/// into the Selinger or FastRandomized planner turns either into a joint
/// query-and-resource optimizer; as the query planner considers candidate
/// sub-plans, the resource planner considers the resource space for each.
class RaqoCostEvaluator : public optimizer::PlanCostEvaluator {
 public:
  RaqoCostEvaluator(cost::JoinCostModels models,
                    resource::ClusterConditions cluster,
                    resource::PricingModel pricing = resource::PricingModel(),
                    RaqoEvaluatorOptions options = RaqoEvaluatorOptions());

  /// Adaptive RAQO hook: replace the cluster conditions (e.g. after the
  /// resource manager reports a load change). Cached plans computed for
  /// the old conditions are dropped.
  void UpdateClusterConditions(resource::ClusterConditions cluster);

  const resource::ClusterConditions& cluster() const { return cluster_; }

  /// Cache maintenance/statistics (zeroed stats when caching is off).
  void ClearCache();
  CacheStats cache_stats() const;
  /// Zeroes the counters atomically and returns the pre-reset snapshot
  /// (see ResourcePlanCache::ResetStats); zeroes when caching is off.
  CacheStats ResetCacheStats();
  size_t cache_size() const;
  /// Per-shard stats of the active cache; empty when caching is off or
  /// the cache is unsharded.
  std::vector<ShardStats> cache_shard_stats() const;

  /// Points this evaluator at a cache owned jointly with other planner
  /// threads (the concurrent planning service: N planners, one cache).
  /// The cache must be thread-safe (built with shards > 0) when more
  /// than one planner shares it. Passing nullptr reverts to the
  /// evaluator-owned cache configured by the options. Pending batched
  /// inserts are flushed to the previously shared cache first.
  void ShareCache(std::shared_ptr<ResourcePlanCache> cache);

  /// Pushes any write-behind staged inserts to the shared cache (one
  /// batched InsertBatch per call). RaqoPlanner calls this at the end
  /// of every query so cross-worker reuse is at most one query stale;
  /// the destructor and ShareCache flush too, so no computed plan is
  /// ever lost. No-op without a shared cache or with batching off.
  void FlushSharedCacheInserts();

  /// True when the active cache is shared with other planners; per-query
  /// cache statistics are then workload-global, not per-planner, and the
  /// planner refrains from clearing or resetting it between queries.
  bool cache_is_shared() const { return shared_cache_ != nullptr; }

  const RaqoEvaluatorOptions& options() const { return options_; }

  /// Marks a query boundary: drops the per-model warm-start memory of
  /// the switch-aware search so every query plans from a cold incumbent.
  /// Warm starts never change results — this only keeps the per-query
  /// `configs_explored` stats independent of which queries a worker
  /// planned before (the concurrent runner steals queries dynamically).
  void BeginQuery();

  /// True when the switch-aware search prunes with a validated bound
  /// oracle for the given join implementation (false for the other
  /// strategies and for monotonicity-rejected models).
  bool has_bound_oracle(plan::JoinImpl impl) const {
    return oracles_[impl == plan::JoinImpl::kSortMergeJoin ? 0 : 1]
        .has_value();
  }

  /// Flushes any pending write-behind inserts to the shared cache.
  ~RaqoCostEvaluator() override;

 protected:
  Result<optimizer::OperatorCost> CostJoinImpl(
      const optimizer::JoinContext& context) override;

 private:
  /// The cache planning goes through: the shared cache when one is
  /// attached, the owned one otherwise (may be null when caching is off).
  ResourcePlanCache* active_cache() const {
    return shared_cache_ != nullptr ? shared_cache_.get() : cache_.get();
  }

  /// True when inserts into the shared cache are write-behind batched:
  /// requires a shared cache in exact lookup mode (the only mode whose
  /// hits provably reproduce recomputation) and a non-zero batch size.
  bool batching_shared_inserts() const {
    return shared_cache_ != nullptr &&
           shared_cache_->mode() == CacheLookupMode::kExact &&
           options_.shared_insert_batch > 0;
  }

  cost::JoinCostModels models_;
  resource::ClusterConditions cluster_;
  resource::PricingModel pricing_;
  RaqoEvaluatorOptions options_;
  /// Trace-span name of the resource search this evaluator runs:
  /// "planner.resource.grid" for the exhaustive strategies,
  /// "planner.resource.hillclimb" for the climbing ones.
  const char* resource_span_name_ = "planner.resource.grid";
  std::unique_ptr<ResourcePlanner> planner_;
  std::unique_ptr<ResourcePlanCache> cache_;
  std::shared_ptr<ResourcePlanCache> shared_cache_;
  /// Write-behind state, live only while batching_shared_inserts():
  /// `staging_` is a private unsharded exact-mode cache consulted before
  /// the shared one (and fed by both computed plans and shared hits, so
  /// repeated lookups stay lock-free); `pending_inserts_` holds the
  /// computed plans not yet flushed to the shared cache, in insertion
  /// order. Exact-mode entries equal what recomputation would produce,
  /// so staging entries can never go stale — only cluster-condition
  /// changes invalidate them, and those clear everything.
  std::unique_ptr<ResourcePlanCache> staging_;
  std::vector<CacheEntryRecord> pending_inserts_;
  /// Switch-aware search state, unused by the other strategies. Indexed
  /// by join implementation (0 = SMJ, 1 = BHJ): a validated lower-bound
  /// oracle per model (nullopt after monotonicity rejection => that
  /// model's searches run exhaustively) and the previous search's
  /// optimum as the next warm start (cleared by BeginQuery and cluster
  /// updates).
  std::array<std::optional<cost::ResourceBoundOracle>, 2> oracles_;
  std::array<std::optional<resource::ResourceConfig>, 2> last_best_;
  bool switch_aware_ = false;
};

}  // namespace raqo::core

#endif  // RAQO_CORE_RAQO_COST_EVALUATOR_H_
