#ifndef RAQO_CORE_RAQO_COST_EVALUATOR_H_
#define RAQO_CORE_RAQO_COST_EVALUATOR_H_

#include <memory>

#include "core/plan_cache.h"
#include "core/resource_planner.h"
#include "cost/cost_model.h"
#include "optimizer/cost_evaluator.h"
#include "resource/cluster_conditions.h"
#include "resource/pricing.h"

namespace raqo::core {

/// Resource-search strategies of cost-based RAQO (Section VI-B), plus
/// the accelerated-stride extension for very large clusters.
enum class ResourceSearch {
  kBruteForce,
  kHillClimb,
  kAcceleratedHillClimb,
};

/// Configuration of the RAQO cost evaluator.
struct RaqoEvaluatorOptions {
  ResourceSearch search = ResourceSearch::kHillClimb;

  /// Resource-plan caching (off by default, matching the paper's setup
  /// of clearing the cache before each query unless stated otherwise).
  bool use_cache = false;
  CacheLookupMode cache_mode = CacheLookupMode::kNearestNeighbor;
  /// The "data delta threshold" of Figure 14, in GB of smaller-input
  /// size.
  double cache_threshold_gb = 0.01;
  CacheIndexKind cache_index = CacheIndexKind::kSortedArray;

  /// Objective weight for resource planning: 1.0 plans resources for pure
  /// execution time, 0.0 for pure monetary cost.
  double time_weight = 1.0;

  /// Broadcast-join feasibility bound: the build side must satisfy
  /// ss <= factor * container size. The resource search is restricted to
  /// the feasible sub-grid (the climb then starts from the smallest
  /// *feasible* configuration).
  double bhj_capacity_factor = 1.14;
};

/// The heart of cost-based RAQO (Section VI-C): a PlanCostEvaluator whose
/// getPlanCost "first performs the resource planning (or lookup in the
/// cache) and then returns the sub-plan cost". Plugging this evaluator
/// into the Selinger or FastRandomized planner turns either into a joint
/// query-and-resource optimizer; as the query planner considers candidate
/// sub-plans, the resource planner considers the resource space for each.
class RaqoCostEvaluator : public optimizer::PlanCostEvaluator {
 public:
  RaqoCostEvaluator(cost::JoinCostModels models,
                    resource::ClusterConditions cluster,
                    resource::PricingModel pricing = resource::PricingModel(),
                    RaqoEvaluatorOptions options = RaqoEvaluatorOptions());

  /// Adaptive RAQO hook: replace the cluster conditions (e.g. after the
  /// resource manager reports a load change). Cached plans computed for
  /// the old conditions are dropped.
  void UpdateClusterConditions(resource::ClusterConditions cluster);

  const resource::ClusterConditions& cluster() const { return cluster_; }

  /// Cache maintenance/statistics (zeroed stats when caching is off).
  void ClearCache();
  CacheStats cache_stats() const;
  void ResetCacheStats();
  size_t cache_size() const;

  const RaqoEvaluatorOptions& options() const { return options_; }

 protected:
  Result<optimizer::OperatorCost> CostJoinImpl(
      const optimizer::JoinContext& context) override;

 private:
  cost::JoinCostModels models_;
  resource::ClusterConditions cluster_;
  resource::PricingModel pricing_;
  RaqoEvaluatorOptions options_;
  std::unique_ptr<ResourcePlanner> planner_;
  std::unique_ptr<ResourcePlanCache> cache_;
};

}  // namespace raqo::core

#endif  // RAQO_CORE_RAQO_COST_EVALUATOR_H_
