#ifndef RAQO_CORE_SEARCH_SPACE_H_
#define RAQO_CORE_SEARCH_SPACE_H_

#include <string>

namespace raqo::core {

/// The paper's search-space accounting (Section VI-B). For n relations,
/// `a` operator implementations, `rp` possible container counts and `rc`
/// possible container sizes:
///   - joint per-operator resource choices: n! * (a * rp * rc)^n
///   - with the paper's independence assumption (each join, sitting at a
///     shuffle boundary, picks resources independently):
///     n! * a * n * rp * rc
/// Values explode quickly, so both are computed in log10.
struct SearchSpaceSize {
  /// log10 of n! * (a * rp * rc)^n.
  double log10_joint = 0.0;
  /// log10 of n! * a * n * rp * rc.
  double log10_independent = 0.0;

  /// e.g. "joint 10^42.3, independent 10^9.1".
  std::string ToString() const;
};

/// Computes both sizes; arguments must be >= 1.
SearchSpaceSize ComputeSearchSpace(int num_relations, int num_impls,
                                   int container_count_choices,
                                   int container_size_choices);

}  // namespace raqo::core

#endif  // RAQO_CORE_SEARCH_SPACE_H_
