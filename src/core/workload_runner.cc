#include "core/workload_runner.h"

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/trace.h"

namespace raqo::core {

WorkloadRunner::WorkloadRunner(RaqoPlanner* planner) : planner_(planner) {
  RAQO_CHECK(planner != nullptr);
}

void DescribePlanInReport(const JointPlan& plan, QueryRunReport* entry) {
  entry->plan = plan.plan->ToString();
  plan.plan->VisitJoins([&](const plan::PlanNode& join) {
    if (join.resources().has_value()) {
      entry->join_resources.push_back(*join.resources());
    }
  });
}

void AccumulateReportTotals(WorkloadReport* report) {
  report->total_wall_ms = 0.0;
  report->total_resource_configs_explored = 0;
  report->total_cache_hits = 0;
  report->total_cache_misses = 0;
  for (const QueryRunReport& entry : report->queries) {
    report->total_wall_ms += entry.wall_ms;
    report->total_resource_configs_explored +=
        entry.resource_configs_explored;
    report->total_cache_hits += entry.cache_hits;
    report->total_cache_misses += entry.cache_misses;
  }
}

Result<WorkloadReport> WorkloadRunner::Run(
    const std::vector<WorkloadQuery>& workload) {
  if (workload.empty()) {
    return Status::InvalidArgument("workload is empty");
  }
  Stopwatch watch;
  WorkloadReport report;
  for (size_t i = 0; i < workload.size(); ++i) {
    const WorkloadQuery& query = workload[i];
    obs::Span span;
    if (obs::TracingOn()) {
      span = obs::DefaultTracer().StartSpan("runner.query");
      span.SetAttr("query", query.label);
      span.SetAttr("index", static_cast<int64_t>(i));
    }
    RAQO_ASSIGN_OR_RETURN(JointPlan plan, planner_->Plan(query.tables));
    span.End();
    QueryRunReport entry;
    entry.label = query.label;
    entry.cost = plan.cost;
    DescribePlanInReport(plan, &entry);
    entry.wall_ms = plan.stats.wall_ms;
    entry.resource_configs_explored = plan.stats.resource_configs_explored;
    // Plan() resets the cache *statistics* before every query (only the
    // cache contents persist across queries), so these are per-query.
    entry.cache_hits = plan.stats.cache_hits;
    entry.cache_misses = plan.stats.cache_misses;
    report.queries.push_back(std::move(entry));
  }
  AccumulateReportTotals(&report);
  report.wall_clock_ms = watch.ElapsedMillis();
  return report;
}

}  // namespace raqo::core
