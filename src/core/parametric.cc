#include "core/parametric.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace raqo::core {

namespace {

/// Distance between cluster conditions in log space of the capacity
/// maxima.
double ConditionDistance(const resource::ClusterConditions& a,
                         const resource::ClusterConditions& b) {
  const double dcs = std::log(a.max().container_size_gb()) -
                     std::log(b.max().container_size_gb());
  const double dnc = std::log(a.max().num_containers()) -
                     std::log(b.max().num_containers());
  return dcs * dcs + dnc * dnc;
}

}  // namespace

Result<ParametricPlanSet> ParametricPlanSet::Build(
    RaqoPlanner& planner, const std::vector<catalog::TableId>& tables,
    const std::vector<resource::ClusterConditions>& representatives) {
  if (representatives.empty()) {
    return Status::InvalidArgument(
        "parametric plan set needs at least one representative condition");
  }
  ParametricPlanSet set;
  for (const resource::ClusterConditions& conditions : representatives) {
    planner.UpdateClusterConditions(conditions);
    RAQO_ASSIGN_OR_RETURN(JointPlan plan, planner.Plan(tables));
    Entry entry{conditions, std::move(plan)};
    set.entries_.push_back(std::move(entry));
  }
  return set;
}

const JointPlan& ParametricPlanSet::PlanFor(
    const resource::ClusterConditions& current) const {
  RAQO_CHECK(!entries_.empty()) << "empty parametric plan set";
  size_t best = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries_.size(); ++i) {
    const double d = ConditionDistance(entries_[i].conditions, current);
    if (d < best_distance) {
      best_distance = d;
      best = i;
    }
  }
  return entries_[best].plan;
}

int ParametricPlanSet::DistinctShapes() const {
  int distinct = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    bool duplicate = false;
    for (size_t j = 0; j < i; ++j) {
      if (entries_[i].plan.plan->StructurallyEquals(*entries_[j].plan.plan)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) ++distinct;
  }
  return distinct;
}

}  // namespace raqo::core
