#ifndef RAQO_CORE_PARAMETRIC_H_
#define RAQO_CORE_PARAMETRIC_H_

#include <vector>

#include "core/raqo_planner.h"

namespace raqo::core {

/// Answers the paper's research-agenda question "what should be the RAQO
/// output: a decision tree, a machine learning model, or analytical
/// formulas?" with the *parametric plan* option its related work
/// discusses (dynamic query evaluation plans [37], parametric query
/// optimization [38]): joint plans are precomputed for representative
/// cluster conditions at optimization time, and at execution time the
/// plan for the nearest condition is dispatched without re-running the
/// optimizer.
class ParametricPlanSet {
 public:
  /// One precomputed alternative.
  struct Entry {
    resource::ClusterConditions conditions;
    JointPlan plan;
  };

  /// Optimizes `tables` once per representative condition. The planner's
  /// cluster conditions are updated along the way (and left at the last
  /// representative). Fails when `representatives` is empty or any
  /// planning run fails.
  static Result<ParametricPlanSet> Build(
      RaqoPlanner& planner, const std::vector<catalog::TableId>& tables,
      const std::vector<resource::ClusterConditions>& representatives);

  /// The precomputed plan for the representative condition nearest to
  /// `current` (log-space distance over the two capacity maxima — the
  /// ratios matter, not the absolute container counts).
  const JointPlan& PlanFor(
      const resource::ClusterConditions& current) const;

  /// Number of distinct plan *shapes* across the entries (how much the
  /// optimal plan actually varies over the condition space).
  int DistinctShapes() const;

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace raqo::core

#endif  // RAQO_CORE_PARAMETRIC_H_
