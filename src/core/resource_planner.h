#ifndef RAQO_CORE_RESOURCE_PLANNER_H_
#define RAQO_CORE_RESOURCE_PLANNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "common/result.h"
#include "common/thread_pool.h"
#include "resource/cluster_conditions.h"
#include "resource/resource_config.h"

namespace raqo::core {

/// Scalar cost of running the sub-plan under a resource configuration.
/// Implementations typically wrap a learned OperatorCostModel; returning
/// +infinity marks an infeasible configuration.
using ResourceCostFn = std::function<double(const resource::ResourceConfig&)>;

/// Sound lower bound of the cost over *every* grid cell in the inclusive
/// box [lo, hi]: for all cells r in the box, bound(lo, hi) <= cost(r).
/// Returning -infinity says "no bound available for this box" and simply
/// disables pruning there — soundness over tightness, always.
using ResourceBoxBoundFn = std::function<double(
    const resource::ResourceConfig& lo, const resource::ResourceConfig& hi)>;

/// Optional acceleration hints for a resource search. Both members are
/// pure accelerators: any planner honoring them must return bit-identical
/// results with or without them (the incremental-search property tests
/// hold every combination to that).
struct ResourceSearchHints {
  /// Enables dominance pruning (branch-and-bound over grid blocks).
  /// Empty function => no pruning.
  ResourceBoxBoundFn box_lower_bound;
  /// The previous search's optimum under similar data characteristics
  /// (the switch-point observation: the winning cell moves rarely).
  /// Seeding the incumbent with it lets tight bounds prune almost the
  /// whole grid when no switch point was crossed. Snapped onto the
  /// current grid before use, so a stale or off-grid value is safe.
  std::optional<resource::ResourceConfig> warm_start;
};

/// Outcome of planning resources for one sub-plan.
struct ResourcePlanResult {
  resource::ResourceConfig config;
  /// Objective value at `config` (+infinity if nothing feasible).
  double cost = 0.0;
  /// Resource configurations whose cost was evaluated — the paper's
  /// "#Resource-Iterations" overhead metric (Figure 13).
  int64_t configs_explored = 0;
  /// Grid cells skipped by dominance pruning (0 for exhaustive scans).
  int64_t cells_pruned = 0;
  /// Lower-bound oracle invocations (each costs ~4 model evaluations).
  int64_t bound_probes = 0;
  /// True when the winning cell is the warm-start cell — no switch point
  /// was crossed since the previous search.
  bool warm_start_won = false;
};

/// Picks the resource configuration for one sub-plan (one join operator),
/// given the current cluster conditions. The paper plans resources
/// per-operator because joins sit at shuffle boundaries and can be
/// provisioned independently (Section VI-B).
class ResourcePlanner {
 public:
  virtual ~ResourcePlanner() = default;

  /// Searches the cluster's discrete resource grid. Fails with
  /// FailedPrecondition when no configuration in the grid is feasible.
  virtual Result<ResourcePlanResult> PlanResources(
      const ResourceCostFn& cost,
      const resource::ClusterConditions& cluster) const = 0;

  /// PlanResources with acceleration hints. The default ignores the
  /// hints — only searches that can exploit them while preserving their
  /// exactness contract override this (the hill climbers are already
  /// heuristic and gain nothing sound from a bound).
  virtual Result<ResourcePlanResult> PlanResourcesWithHints(
      const ResourceCostFn& cost,
      const resource::ClusterConditions& cluster,
      const ResourceSearchHints& hints) const {
    (void)hints;
    return PlanResources(cost, cluster);
  }

  virtual const char* name() const = 0;
};

/// Exhaustive search over every configuration in the grid
/// (Section VI-B.1). Optimal but expensive: cost is rp * rc evaluations.
class BruteForceResourcePlanner : public ResourcePlanner {
 public:
  Result<ResourcePlanResult> PlanResources(
      const ResourceCostFn& cost,
      const resource::ClusterConditions& cluster) const override;
  const char* name() const override { return "brute-force"; }
};

/// Algorithm 1 of the paper: hill climbing from the smallest resource
/// configuration. In each round the climber tries one step forward and
/// one step backward along every resource dimension (backtracking after
/// each probe), keeps the best improving move per dimension, and stops at
/// a local optimum. Greedy, so typically ~4x fewer cost evaluations than
/// brute force on the paper's grids.
class HillClimbResourcePlanner : public ResourcePlanner {
 public:
  /// `start`: override of the climb's starting point; defaults to the
  /// cluster minimum ("users want to minimize the resources used").
  HillClimbResourcePlanner() = default;
  explicit HillClimbResourcePlanner(resource::ResourceConfig start)
      : start_(start), has_start_(true) {}

  Result<ResourcePlanResult> PlanResources(
      const ResourceCostFn& cost,
      const resource::ClusterConditions& cluster) const override;
  const char* name() const override { return "hill-climb"; }

 private:
  resource::ResourceConfig start_;
  bool has_start_ = false;
};

/// Brute force with the rp x rc grid partitioned across a thread pool:
/// each worker scans a contiguous band of container-size rows and keeps
/// its local optimum; bands are merged in row-major order, so the result
/// (config, cost, and tie-breaking) is bit-identical to
/// BruteForceResourcePlanner while the wall clock shrinks with the
/// worker count. The supplied cost function is invoked concurrently and
/// must therefore be thread-safe (the learned-model objectives are: they
/// only read immutable model weights).
///
/// Grids below `min_parallel_cells` (and any grid when the pool is
/// absent or has a single worker) are scanned sequentially on the
/// calling thread with the very same enumeration arithmetic, so the
/// cold small-grid path can never be slower than
/// BruteForceResourcePlanner — fan-out/join dispatch only happens where
/// there is enough work to amortize it. The result is bit-identical
/// either way.
class ParallelBruteForceResourcePlanner : public ResourcePlanner {
 public:
  /// Grids smaller than this many cells are scanned sequentially. The
  /// paper-default 10x100 grid sits far below it on purpose: at ~1000
  /// cheap model evaluations, fan-out costs more than it buys.
  static constexpr int64_t kDefaultMinParallelCells = 2048;

  /// Owns a private pool of `num_threads` workers. Prefer the borrowing
  /// constructor wherever a pool already exists — per-planner pools
  /// multiply into N x M threads when planners are themselves pooled.
  explicit ParallelBruteForceResourcePlanner(int num_threads);

  /// Borrows `pool` (must outlive the planner; nullptr degrades to the
  /// sequential scan). Do not call PlanResources from tasks already
  /// running on that pool.
  explicit ParallelBruteForceResourcePlanner(ThreadPool* pool);

  Result<ResourcePlanResult> PlanResources(
      const ResourceCostFn& cost,
      const resource::ClusterConditions& cluster) const override;
  const char* name() const override { return "parallel-brute-force"; }

  /// Adjusts the sequential-fallback threshold (cells). 0 forces the
  /// parallel path for every grid (tests use this to exercise it).
  void set_min_parallel_cells(int64_t cells) { min_parallel_cells_ = cells; }
  int64_t min_parallel_cells() const { return min_parallel_cells_; }

 private:
  ThreadPool* pool_;
  std::unique_ptr<ThreadPool> owned_pool_;
  int64_t min_parallel_cells_ = kDefaultMinParallelCells;
};

/// The switch-point-aware incremental grid search: exhaustive-equivalent
/// (bit-identical winner, cost, and tie-break to
/// BruteForceResourcePlanner) but typically evaluating a small fraction
/// of the grid. Three mechanisms compose:
///
///   1. *Warm start / join-plan reuse*: the previous search's optimum is
///      re-costed first and seeds the incumbent. The paper's Fig. 4/9
///      observation — optima move only at sparse switch points — makes
///      this seed almost always the final winner, so the rest of the
///      sweep is pure verification.
///   2. *Dominance pruning*: the grid is swept in row-major rank order
///      as rows, then blocks of `block_cells` cells; each is skipped
///      when a sound lower bound (hints.box_lower_bound, built from the
///      validated-monotone cost model) shows it cannot beat — or
///      cannot earlier-rank-tie — the incumbent.
///   3. On grids of at least `min_parallel_cells` with a pool attached,
///      rows fan out over ParallelFor; bands prune against their local
///      incumbent plus a shared atomic best-cost (strict rule only —
///      stale reads prune less, never wrong), and band results merge by
///      (cost, rank) exactly like the parallel brute force.
///
/// The tie-break is load-bearing: the cost model clamps predictions at a
/// floor, so large equal-cost plateaus are common and "first cell in
/// row-major order wins" is part of the exhaustive search's observable
/// behavior. A block is therefore pruned only when its bound *strictly*
/// exceeds the incumbent, or ties it while the whole block ranks after
/// the incumbent's cell. Soundness argument: docs/PERF.md.
///
/// Without hints this degrades to the plain exhaustive scan (still
/// bit-identical). The cost function must be thread-safe when a pool is
/// attached.
class SwitchAwareGridResourcePlanner : public ResourcePlanner {
 public:
  /// Cells per pruning block within a row. Small enough that one
  /// surviving block costs little to scan, large enough that bound
  /// probes (~4 model evaluations each) amortize.
  static constexpr int64_t kDefaultBlockCells = 16;

  /// `pool` may be nullptr (sequential always); borrowed, must outlive
  /// the planner.
  explicit SwitchAwareGridResourcePlanner(ThreadPool* pool = nullptr)
      : pool_(pool) {}

  Result<ResourcePlanResult> PlanResources(
      const ResourceCostFn& cost,
      const resource::ClusterConditions& cluster) const override;

  Result<ResourcePlanResult> PlanResourcesWithHints(
      const ResourceCostFn& cost,
      const resource::ClusterConditions& cluster,
      const ResourceSearchHints& hints) const override;

  const char* name() const override { return "switch-aware-grid"; }

  /// Grids below this many cells are swept on the calling thread even
  /// when a pool is attached (same default as the parallel brute force).
  void set_min_parallel_cells(int64_t cells) { min_parallel_cells_ = cells; }
  void set_block_cells(int64_t cells) {
    block_cells_ = cells < 1 ? 1 : cells;
  }

 private:
  ThreadPool* pool_;
  int64_t min_parallel_cells_ =
      ParallelBruteForceResourcePlanner::kDefaultMinParallelCells;
  int64_t block_cells_ = kDefaultBlockCells;
};

/// An extension beyond the paper's Algorithm 1 for very large resource
/// grids (Figure 15(b) scales to 100K containers): per dimension the step
/// doubles while probes in the same direction keep improving and resets
/// to the grid step after a miss, so an optimum D grid cells away is
/// reached in O(log D) evaluations instead of O(D). Every visited
/// configuration stays on the allocation grid (steps are multiples of
/// the grid step), and the result is still a local optimum with respect
/// to single grid steps.
class AcceleratedHillClimbResourcePlanner : public ResourcePlanner {
 public:
  AcceleratedHillClimbResourcePlanner() = default;
  explicit AcceleratedHillClimbResourcePlanner(
      resource::ResourceConfig start)
      : start_(start), has_start_(true) {}

  Result<ResourcePlanResult> PlanResources(
      const ResourceCostFn& cost,
      const resource::ClusterConditions& cluster) const override;
  const char* name() const override { return "accelerated-hill-climb"; }

 private:
  resource::ResourceConfig start_;
  bool has_start_ = false;
};

}  // namespace raqo::core

#endif  // RAQO_CORE_RESOURCE_PLANNER_H_
