#include "core/raqo_planner.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/fixed_resource_evaluator.h"
#include "optimizer/plan_cost.h"
#include "plan/cardinality.h"

namespace raqo::core {

const char* PlannerAlgorithmName(PlannerAlgorithm algorithm) {
  switch (algorithm) {
    case PlannerAlgorithm::kSelinger:
      return "Selinger";
    case PlannerAlgorithm::kFastRandomized:
      return "FastRandomized";
  }
  return "?";
}

RaqoPlanner::RaqoPlanner(const catalog::Catalog* catalog,
                         cost::JoinCostModels models,
                         resource::ClusterConditions cluster,
                         resource::PricingModel pricing,
                         RaqoPlannerOptions options)
    : catalog_(catalog),
      models_(models),
      pricing_(pricing),
      options_(options),
      evaluator_(models, cluster, pricing, options.evaluator) {}

Result<JointPlan> RaqoPlanner::RunPlanner(
    const std::vector<catalog::TableId>& tables,
    optimizer::PlanCostEvaluator& evaluator) {
  // Fresh warm-start state and a recycled scratch arena per run: plans
  // and counters for a query never depend on what this planner worked
  // on before (the concurrent runner steals queries dynamically, so any
  // cross-query leakage would make results scheduling-dependent).
  evaluator_.BeginQuery();
  optimizer::SelingerOptions selinger = options_.selinger;
  if (selinger.arena == nullptr) {
    arena_.Reset();
    selinger.arena = &arena_;
  }
  Result<optimizer::PlannedQuery> planned =
      options_.algorithm == PlannerAlgorithm::kSelinger
          ? optimizer::SelingerPlanner(selinger)
                .Plan(*catalog_, tables, evaluator)
          : optimizer::FastRandomizedPlanner(options_.randomized)
                .PlanBest(*catalog_, tables, evaluator);
  if (!planned.ok()) return planned.status();
  JointPlan out;
  out.plan = std::move(planned->plan);
  out.cost = planned->cost;
  out.stats = planned->stats;
  return out;
}

Result<JointPlan> RaqoPlanner::Plan(
    const std::vector<catalog::TableId>& tables) {
  // A cache shared with other planner threads is workload-scoped: its
  // contents and statistics belong to the whole service, so this planner
  // neither clears nor resets it per query (the per-query hit/miss
  // fields then stay 0; the service reports the shared totals instead).
  const bool shared = evaluator_.cache_is_shared();
  if (options_.clear_cache_between_queries && !shared) {
    evaluator_.ClearCache();
  }
  if (!shared) evaluator_.ResetCacheStats();

  obs::Span span;
  if (obs::TracingOn()) {
    span = obs::DefaultTracer().StartSpan("planner.query");
    span.SetAttr("algorithm", PlannerAlgorithmName(options_.algorithm));
    span.SetAttr("num_tables", static_cast<int64_t>(tables.size()));
  }
  Result<JointPlan> result = RunPlanner(tables, evaluator_);
  if (span.recording()) {
    if (result.ok()) {
      span.SetAttr("plans_considered", result->stats.plans_considered);
      span.SetAttr("cost_seconds", result->cost.seconds);
    } else {
      span.SetAttr("error", result.status().message());
    }
  }
  span.End();

  if (obs::MetricsOn()) {
    static obs::Counter* queries =
        obs::DefaultMetrics().GetCounter("planner.queries");
    static obs::Counter* errors =
        obs::DefaultMetrics().GetCounter("planner.errors");
    queries->Add(1);
    if (!result.ok()) errors->Add(1);
  }
  if (result.ok() && !shared) {
    result->stats.cache_hits = evaluator_.cache_stats().hits;
    result->stats.cache_misses = evaluator_.cache_stats().misses;
  }
  // Publish the query's write-behind staged plans so other planner
  // workers sharing the cache can reuse them (at most one query stale).
  evaluator_.FlushSharedCacheInserts();
  return result;
}

Result<JointPlan> RaqoPlanner::PlanForResources(
    const std::vector<catalog::TableId>& tables,
    const resource::ResourceConfig& resources) {
  if (!evaluator_.cluster().Contains(resources)) {
    return Status::InvalidArgument(
        "requested resources " + resources.ToString() +
        " are outside the cluster conditions " +
        evaluator_.cluster().ToString());
  }
  optimizer::FixedResourceEvaluator fixed(
      models_, resources, pricing_,
      options_.evaluator.bhj_capacity_factor);
  return RunPlanner(tables, fixed);
}

Result<JointPlan> RaqoPlanner::PlanResourcesForPlan(
    const plan::PlanNode& plan) {
  Stopwatch watch;
  if (options_.clear_cache_between_queries && !evaluator_.cache_is_shared()) {
    evaluator_.ClearCache();
  }
  evaluator_.BeginQuery();
  evaluator_.ResetCounters();
  plan::CardinalityEstimator estimator(catalog_);
  JointPlan out;
  out.plan = plan.Clone();
  RAQO_ASSIGN_OR_RETURN(
      out.cost, optimizer::EvaluatePlanCost(*out.plan, estimator, evaluator_,
                                            /*attach_resources=*/true));
  out.stats.operator_cost_calls = evaluator_.operator_cost_calls();
  out.stats.resource_configs_explored =
      evaluator_.resource_configs_explored();
  out.stats.wall_ms = watch.ElapsedMillis();
  evaluator_.FlushSharedCacheInserts();
  return out;
}

Result<JointPlan> RaqoPlanner::PlanForMoneyBudget(
    const std::vector<catalog::TableId>& tables, double max_dollars) {
  if (max_dollars <= 0.0) {
    return Status::InvalidArgument("money budget must be positive");
  }
  RAQO_ASSIGN_OR_RETURN(optimizer::MultiObjectiveResult multi,
                        PlanFrontier(tables));
  const optimizer::ParetoEntry* best = nullptr;
  for (optimizer::ParetoEntry& entry : multi.frontier) {
    if (entry.cost.dollars <= max_dollars &&
        (best == nullptr || entry.cost.seconds < best->cost.seconds)) {
      best = &entry;
    }
  }
  if (best == nullptr) {
    const optimizer::ParetoEntry* cheapest = multi.CheapestEntry();
    return Status::NotFound(StrPrintf(
        "no plan fits the $%.4f budget; the cheapest frontier plan costs "
        "$%.4f",
        max_dollars, cheapest != nullptr ? cheapest->cost.dollars : 0.0));
  }
  JointPlan out;
  out.plan = best->plan->Clone();
  out.cost = best->cost;
  out.stats = multi.stats;
  return out;
}

Result<optimizer::MultiObjectiveResult> RaqoPlanner::PlanFrontier(
    const std::vector<catalog::TableId>& tables) {
  if (options_.frontier_weights.empty()) {
    return Status::InvalidArgument("frontier_weights must not be empty");
  }
  // One randomized pass per resource-objective weight: planning the
  // resources for pure speed and for pure cheapness lands on different
  // configurations, which is what spreads the (time, money) frontier.
  optimizer::MultiObjectiveResult merged;
  for (double weight : options_.frontier_weights) {
    RaqoEvaluatorOptions eval_options = options_.evaluator;
    eval_options.time_weight = weight;
    RaqoCostEvaluator evaluator(models_, evaluator_.cluster(), pricing_,
                                eval_options);
    RAQO_ASSIGN_OR_RETURN(
        optimizer::MultiObjectiveResult partial,
        optimizer::FastRandomizedPlanner(options_.randomized)
            .Plan(*catalog_, tables, evaluator));
    merged.stats.wall_ms += partial.stats.wall_ms;
    merged.stats.plans_considered += partial.stats.plans_considered;
    merged.stats.operator_cost_calls += partial.stats.operator_cost_calls;
    merged.stats.resource_configs_explored +=
        partial.stats.resource_configs_explored;
    for (optimizer::ParetoEntry& entry : partial.frontier) {
      bool dominated = false;
      for (const optimizer::ParetoEntry& existing : merged.frontier) {
        if (existing.cost.Dominates(entry.cost)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      merged.frontier.erase(
          std::remove_if(merged.frontier.begin(), merged.frontier.end(),
                         [&](const optimizer::ParetoEntry& e) {
                           return entry.cost.Dominates(e.cost);
                         }),
          merged.frontier.end());
      merged.frontier.push_back(std::move(entry));
    }
  }
  std::sort(merged.frontier.begin(), merged.frontier.end(),
            [](const optimizer::ParetoEntry& a,
               const optimizer::ParetoEntry& b) {
              return a.cost.seconds < b.cost.seconds;
            });
  return merged;
}

void RaqoPlanner::UpdateClusterConditions(
    resource::ClusterConditions cluster) {
  evaluator_.UpdateClusterConditions(cluster);
}

}  // namespace raqo::core
