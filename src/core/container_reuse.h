#ifndef RAQO_CORE_CONTAINER_REUSE_H_
#define RAQO_CORE_CONTAINER_REUSE_H_

#include <memory>

#include "common/result.h"
#include "plan/plan_node.h"
#include "resource/cluster_conditions.h"
#include "sim/simulator.h"

namespace raqo::core {

/// Outcome of the per-operator vs harmonized resource analysis.
struct ReuseAnalysis {
  /// Simulated runtime with each operator's own resources (reuse applies
  /// only where neighboring stages happen to match).
  double per_operator_seconds = 0.0;
  /// Best simulated runtime with a single configuration shared by every
  /// operator (all stages after the first reuse containers).
  double harmonized_seconds = 0.0;
  /// The winning shared configuration.
  resource::ResourceConfig harmonized_config;
  /// True when harmonizing beats the per-operator assignment.
  bool harmonize_wins = false;

  double speedup() const {
    return harmonized_seconds > 0.0
               ? per_operator_seconds / harmonized_seconds
               : 0.0;
  }
};

/// Explores the trade-off the paper's research agenda raises
/// (Section VIII, "RAQO on arbitrary queries", point iii): per-operator
/// resource choices extract the best per-stage performance, but keeping
/// resources *constant* across operators lets the runtime reuse
/// containers and skip per-stage startup. The analysis simulates the
/// joint plan as-is and under each distinct per-operator configuration
/// promoted to a plan-wide configuration (with reuse), and reports which
/// wins. Every join of `joint_plan` must carry a resource request.
Result<ReuseAnalysis> AnalyzeContainerReuse(
    sim::ExecutionSimulator& simulator, const plan::PlanNode& joint_plan);

/// Convenience: clones `joint_plan` and, when harmonizing wins, rewrites
/// every join's resources to the winning shared configuration.
Result<std::unique_ptr<plan::PlanNode>> ApplyContainerReuse(
    sim::ExecutionSimulator& simulator, const plan::PlanNode& joint_plan);

}  // namespace raqo::core

#endif  // RAQO_CORE_CONTAINER_REUSE_H_
