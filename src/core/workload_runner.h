#ifndef RAQO_CORE_WORKLOAD_RUNNER_H_
#define RAQO_CORE_WORKLOAD_RUNNER_H_

#include <string>
#include <vector>

#include "core/raqo_planner.h"

namespace raqo::core {

/// One query of a planning workload.
struct WorkloadQuery {
  std::string label;
  std::vector<catalog::TableId> tables;
};

/// Per-query planning outcome within a workload run.
struct QueryRunReport {
  std::string label;
  cost::CostVector cost;
  /// Compact rendering of the chosen plan (table ids), e.g.
  /// "SMJ(BHJ(t0, t2), t5)"; lets callers check plan identity across
  /// runner implementations without holding the plan trees.
  std::string plan;
  /// Resource configuration of every join, in the plan's post-order
  /// (VisitJoins order) — the joint half of the joint plan.
  std::vector<resource::ResourceConfig> join_resources;
  double wall_ms = 0.0;
  int64_t resource_configs_explored = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
};

/// Fills the plan/join_resources fields of a report entry from a planned
/// joint plan (shared by the sequential and concurrent runners).
void DescribePlanInReport(const JointPlan& plan, QueryRunReport* entry);

/// Aggregate outcome of a workload run. The `total_*` fields are always
/// exactly the sums of the per-query reports (an invariant the test
/// suite checks for every runner); `wall_clock_ms` is the end-to-end
/// elapsed time of the run, which for a concurrent runner is less than
/// the summed per-query planning time.
struct WorkloadReport {
  std::vector<QueryRunReport> queries;
  double total_wall_ms = 0.0;
  int64_t total_resource_configs_explored = 0;
  int64_t total_cache_hits = 0;
  int64_t total_cache_misses = 0;
  /// End-to-end elapsed wall-clock time of the whole run.
  double wall_clock_ms = 0.0;
  /// Hit/miss delta of the workload-scoped shared cache over this run
  /// (zeros when no shared cache is in play). Kept separate from the
  /// per-query totals so the sum invariant above stays exact.
  CacheStats shared_cache;
};

/// Sums the per-query entries of `report` into its `total_*` fields
/// (clearing any previous totals first).
void AccumulateReportTotals(WorkloadReport* report);

/// Drives a sequence of queries through one RAQO planner, the way an
/// enterprise workload hits an optimizer service. With across-query
/// caching enabled (planner option `clear_cache_between_queries=false`),
/// "successive queries can leverage the older cache" — the Figure 15(b)
/// across-query scenario, packaged as an API.
class WorkloadRunner {
 public:
  /// The planner is borrowed and must outlive the runner; its caching
  /// configuration governs cross-query reuse.
  explicit WorkloadRunner(RaqoPlanner* planner);

  /// Plans every query in order; fails fast on the first planning error.
  Result<WorkloadReport> Run(const std::vector<WorkloadQuery>& workload);

 private:
  RaqoPlanner* planner_;
};

}  // namespace raqo::core

#endif  // RAQO_CORE_WORKLOAD_RUNNER_H_
