#ifndef RAQO_CORE_WORKLOAD_RUNNER_H_
#define RAQO_CORE_WORKLOAD_RUNNER_H_

#include <string>
#include <vector>

#include "core/raqo_planner.h"

namespace raqo::core {

/// One query of a planning workload.
struct WorkloadQuery {
  std::string label;
  std::vector<catalog::TableId> tables;
};

/// Per-query planning outcome within a workload run.
struct QueryRunReport {
  std::string label;
  cost::CostVector cost;
  double wall_ms = 0.0;
  int64_t resource_configs_explored = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
};

/// Aggregate outcome of a workload run.
struct WorkloadReport {
  std::vector<QueryRunReport> queries;
  double total_wall_ms = 0.0;
  int64_t total_resource_configs_explored = 0;
  int64_t total_cache_hits = 0;
  int64_t total_cache_misses = 0;
};

/// Drives a sequence of queries through one RAQO planner, the way an
/// enterprise workload hits an optimizer service. With across-query
/// caching enabled (planner option `clear_cache_between_queries=false`),
/// "successive queries can leverage the older cache" — the Figure 15(b)
/// across-query scenario, packaged as an API.
class WorkloadRunner {
 public:
  /// The planner is borrowed and must outlive the runner; its caching
  /// configuration governs cross-query reuse.
  explicit WorkloadRunner(RaqoPlanner* planner);

  /// Plans every query in order; fails fast on the first planning error.
  Result<WorkloadReport> Run(const std::vector<WorkloadQuery>& workload);

 private:
  RaqoPlanner* planner_;
};

}  // namespace raqo::core

#endif  // RAQO_CORE_WORKLOAD_RUNNER_H_
