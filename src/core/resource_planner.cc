#include "core/resource_planner.h"

#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <vector>

namespace raqo::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// NaN objective values (e.g. from degenerate cardinality estimates)
/// would break the climbers' comparisons; treat them as infeasible.
double Sanitize(double cost) { return std::isnan(cost) ? kInf : cost; }

}  // namespace

Result<ResourcePlanResult> BruteForceResourcePlanner::PlanResources(
    const ResourceCostFn& cost,
    const resource::ClusterConditions& cluster) const {
  ResourcePlanResult best;
  best.cost = kInf;
  int64_t explored = 0;
  cluster.ForEachConfig([&](const resource::ResourceConfig& config) {
    ++explored;
    const double c = Sanitize(cost(config));
    if (c < best.cost) {
      best.cost = c;
      best.config = config;
    }
    return true;
  });
  best.configs_explored = explored;
  if (best.cost == kInf) {
    return Status::FailedPrecondition(
        "no feasible resource configuration in the cluster grid");
  }
  return best;
}

ParallelBruteForceResourcePlanner::ParallelBruteForceResourcePlanner(
    int num_threads)
    : owned_pool_(std::make_unique<ThreadPool>(num_threads)) {
  pool_ = owned_pool_.get();
}

ParallelBruteForceResourcePlanner::ParallelBruteForceResourcePlanner(
    ThreadPool* pool)
    : pool_(pool) {}

namespace {

/// Per-band reduction state of the parallel scan.
struct BandBest {
  resource::ResourceConfig config;
  double cost = kInf;
  int64_t explored = 0;
  /// Row-major rank of the winning cell, for the deterministic
  /// earliest-wins tie-break the sequential scan applies implicitly.
  int64_t rank = 0;
};

/// Scans container-size rows [row_begin, row_end) of the grid with the
/// exact enumeration arithmetic of the sequential brute force, so costs
/// (and their floating-point quirks) match cell for cell no matter how
/// the rows are banded — or whether they are banded at all.
BandBest ScanBand(const ResourceCostFn& cost,
                  const resource::ClusterConditions& cluster,
                  int64_t row_begin, int64_t row_end, int64_t nc_points) {
  const resource::ResourceConfig& min = cluster.min();
  const resource::ResourceConfig& step = cluster.step();
  BandBest local;
  for (int64_t i = row_begin; i < row_end; ++i) {
    const double cs = min.dim(resource::kContainerSizeGb) +
                      static_cast<double>(i) *
                          step.dim(resource::kContainerSizeGb);
    for (int64_t j = 0; j < nc_points; ++j) {
      const double nc = min.dim(resource::kNumContainers) +
                        static_cast<double>(j) *
                            step.dim(resource::kNumContainers);
      const resource::ResourceConfig config(cs, nc);
      ++local.explored;
      const double c = Sanitize(cost(config));
      if (c < local.cost) {
        local.cost = c;
        local.config = config;
        local.rank = i * nc_points + j;
      }
    }
  }
  return local;
}

}  // namespace

Result<ResourcePlanResult> ParallelBruteForceResourcePlanner::PlanResources(
    const ResourceCostFn& cost,
    const resource::ClusterConditions& cluster) const {
  const int64_t cs_points =
      cluster.GridPoints(resource::kContainerSizeGb);
  const int64_t nc_points = cluster.GridPoints(resource::kNumContainers);

  // Small grids drown in fan-out/join dispatch: scan them inline on the
  // calling thread instead (TotalGridSize saturates, so absurd grids
  // always take the parallel path). Bit-identical by construction —
  // one band covering every row is the sequential scan.
  if (pool_ == nullptr || pool_->size() <= 1 ||
      cluster.TotalGridSize() < min_parallel_cells_) {
    const BandBest all = ScanBand(cost, cluster, 0, cs_points, nc_points);
    if (all.cost == kInf) {
      return Status::FailedPrecondition(
          "no feasible resource configuration in the cluster grid");
    }
    ResourcePlanResult best;
    best.cost = all.cost;
    best.config = all.config;
    best.configs_explored = all.explored;
    return best;
  }

  // One band of container-size rows per chunk; ParallelFor sizes the
  // chunks to the pool.
  std::mutex merge_mu;
  std::vector<BandBest> bands;
  std::atomic<int64_t> explored_total{0};
  pool_->ParallelFor(cs_points, [&](int64_t row_begin, int64_t row_end) {
    BandBest local = ScanBand(cost, cluster, row_begin, row_end, nc_points);
    explored_total.fetch_add(local.explored, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(merge_mu);
    bands.push_back(local);
  });

  ResourcePlanResult best;
  best.cost = kInf;
  int64_t best_rank = 0;
  for (const BandBest& band : bands) {
    if (band.cost < best.cost ||
        (band.cost == best.cost && band.cost < kInf &&
         band.rank < best_rank)) {
      best.cost = band.cost;
      best.config = band.config;
      best_rank = band.rank;
    }
  }
  best.configs_explored = explored_total.load(std::memory_order_relaxed);
  if (best.cost == kInf) {
    return Status::FailedPrecondition(
        "no feasible resource configuration in the cluster grid");
  }
  return best;
}

Result<ResourcePlanResult> HillClimbResourcePlanner::PlanResources(
    const ResourceCostFn& cost,
    const resource::ClusterConditions& cluster) const {
  // Algorithm 1, lines 1-3: step sizes come from the cluster's discrete
  // grid; candidate steps are one backward and one forward; the climb
  // starts from the smallest resources unless overridden.
  const resource::ResourceConfig& step = cluster.step();
  static constexpr double kCandidates[] = {-1.0, 1.0};
  resource::ResourceConfig curr =
      has_start_ ? cluster.SnapToGrid(start_) : cluster.min();

  ResourcePlanResult result;
  int64_t explored = 0;

  // Lines 4-21: climb until no candidate step improves the cost.
  while (true) {
    const double curr_cost = Sanitize(cost(curr));
    ++explored;
    double best_cost = curr_cost;
    for (size_t dim = 0; dim < resource::kNumResourceDims; ++dim) {
      int best_candidate = -1;
      for (int j = 0; j < 2; ++j) {
        const double delta = step.dim(dim) * kCandidates[j];
        const double moved = curr.dim(dim) + delta;
        if (moved > cluster.max().dim(dim) + 1e-9 ||
            moved < cluster.min().dim(dim) - 1e-9) {
          continue;
        }
        curr.set_dim(dim, moved);           // apply
        const double temp = Sanitize(cost(curr));  // probe
        ++explored;
        curr.set_dim(dim, moved - delta);   // backtrack
        if (temp < best_cost) {
          best_cost = temp;
          best_candidate = j;
        }
      }
      if (best_candidate != -1) {
        curr.set_dim(dim,
                     curr.dim(dim) + step.dim(dim) * kCandidates[best_candidate]);
      }
    }
    if (best_cost >= curr_cost) {
      // Lines 20-21: no better neighbor exists.
      result.config = curr;
      result.cost = curr_cost;
      result.configs_explored = explored;
      break;
    }
  }

  if (result.cost == kInf) {
    return Status::FailedPrecondition(
        "hill climb start (and its neighborhood) is infeasible; restrict "
        "the cluster conditions to the feasible region first");
  }
  return result;
}

Result<ResourcePlanResult> AcceleratedHillClimbResourcePlanner::PlanResources(
    const ResourceCostFn& cost,
    const resource::ClusterConditions& cluster) const {
  resource::ResourceConfig curr =
      has_start_ ? cluster.SnapToGrid(start_) : cluster.min();
  int64_t explored = 0;
  double curr_cost = Sanitize(cost(curr));
  ++explored;

  bool improved = true;
  while (improved) {
    improved = false;
    for (size_t dim = 0; dim < resource::kNumResourceDims; ++dim) {
      for (double direction : {1.0, -1.0}) {
        // Doubling line search along this direction: keep moving while
        // the cost improves, doubling the stride; stop at the first miss
        // or at the cluster boundary.
        double stride = cluster.step().dim(dim);
        while (true) {
          const double moved = curr.dim(dim) + direction * stride;
          if (moved > cluster.max().dim(dim) + 1e-9 ||
              moved < cluster.min().dim(dim) - 1e-9) {
            break;
          }
          resource::ResourceConfig candidate = curr;
          candidate.set_dim(dim, moved);
          const double c = Sanitize(cost(candidate));
          ++explored;
          if (c < curr_cost) {
            curr = candidate;
            curr_cost = c;
            improved = true;
            stride *= 2.0;
          } else {
            break;
          }
        }
      }
    }
  }

  if (curr_cost == kInf) {
    return Status::FailedPrecondition(
        "accelerated hill climb start is infeasible; restrict the cluster "
        "conditions to the feasible region first");
  }
  ResourcePlanResult result;
  result.config = curr;
  result.cost = curr_cost;
  result.configs_explored = explored;
  return result;
}

}  // namespace raqo::core
