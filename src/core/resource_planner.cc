#include "core/resource_planner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <vector>

namespace raqo::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// NaN objective values (e.g. from degenerate cardinality estimates)
/// would break the climbers' comparisons; treat them as infeasible.
double Sanitize(double cost) { return std::isnan(cost) ? kInf : cost; }

}  // namespace

Result<ResourcePlanResult> BruteForceResourcePlanner::PlanResources(
    const ResourceCostFn& cost,
    const resource::ClusterConditions& cluster) const {
  ResourcePlanResult best;
  best.cost = kInf;
  int64_t explored = 0;
  cluster.ForEachConfig([&](const resource::ResourceConfig& config) {
    ++explored;
    const double c = Sanitize(cost(config));
    if (c < best.cost) {
      best.cost = c;
      best.config = config;
    }
    return true;
  });
  best.configs_explored = explored;
  if (best.cost == kInf) {
    return Status::FailedPrecondition(
        "no feasible resource configuration in the cluster grid");
  }
  return best;
}

ParallelBruteForceResourcePlanner::ParallelBruteForceResourcePlanner(
    int num_threads)
    : owned_pool_(std::make_unique<ThreadPool>(num_threads)) {
  pool_ = owned_pool_.get();
}

ParallelBruteForceResourcePlanner::ParallelBruteForceResourcePlanner(
    ThreadPool* pool)
    : pool_(pool) {}

namespace {

/// Per-band reduction state of the parallel scan.
struct BandBest {
  resource::ResourceConfig config;
  double cost = kInf;
  int64_t explored = 0;
  /// Row-major rank of the winning cell, for the deterministic
  /// earliest-wins tie-break the sequential scan applies implicitly.
  int64_t rank = 0;
};

/// Scans container-size rows [row_begin, row_end) of the grid with the
/// exact enumeration arithmetic of the sequential brute force, so costs
/// (and their floating-point quirks) match cell for cell no matter how
/// the rows are banded — or whether they are banded at all.
BandBest ScanBand(const ResourceCostFn& cost,
                  const resource::ClusterConditions& cluster,
                  int64_t row_begin, int64_t row_end, int64_t nc_points) {
  const resource::ResourceConfig& min = cluster.min();
  const resource::ResourceConfig& step = cluster.step();
  BandBest local;
  for (int64_t i = row_begin; i < row_end; ++i) {
    const double cs = min.dim(resource::kContainerSizeGb) +
                      static_cast<double>(i) *
                          step.dim(resource::kContainerSizeGb);
    for (int64_t j = 0; j < nc_points; ++j) {
      const double nc = min.dim(resource::kNumContainers) +
                        static_cast<double>(j) *
                            step.dim(resource::kNumContainers);
      const resource::ResourceConfig config(cs, nc);
      ++local.explored;
      const double c = Sanitize(cost(config));
      if (c < local.cost) {
        local.cost = c;
        local.config = config;
        local.rank = i * nc_points + j;
      }
    }
  }
  return local;
}

}  // namespace

Result<ResourcePlanResult> ParallelBruteForceResourcePlanner::PlanResources(
    const ResourceCostFn& cost,
    const resource::ClusterConditions& cluster) const {
  const int64_t cs_points =
      cluster.GridPoints(resource::kContainerSizeGb);
  const int64_t nc_points = cluster.GridPoints(resource::kNumContainers);

  // Small grids drown in fan-out/join dispatch: scan them inline on the
  // calling thread instead (TotalGridSize saturates, so absurd grids
  // always take the parallel path). Bit-identical by construction —
  // one band covering every row is the sequential scan.
  if (pool_ == nullptr || pool_->size() <= 1 ||
      cluster.TotalGridSize() < min_parallel_cells_) {
    const BandBest all = ScanBand(cost, cluster, 0, cs_points, nc_points);
    if (all.cost == kInf) {
      return Status::FailedPrecondition(
          "no feasible resource configuration in the cluster grid");
    }
    ResourcePlanResult best;
    best.cost = all.cost;
    best.config = all.config;
    best.configs_explored = all.explored;
    return best;
  }

  // One band of container-size rows per chunk; ParallelFor sizes the
  // chunks to the pool.
  std::mutex merge_mu;
  std::vector<BandBest> bands;
  std::atomic<int64_t> explored_total{0};
  pool_->ParallelFor(cs_points, [&](int64_t row_begin, int64_t row_end) {
    BandBest local = ScanBand(cost, cluster, row_begin, row_end, nc_points);
    explored_total.fetch_add(local.explored, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(merge_mu);
    bands.push_back(local);
  });

  ResourcePlanResult best;
  best.cost = kInf;
  int64_t best_rank = 0;
  for (const BandBest& band : bands) {
    if (band.cost < best.cost ||
        (band.cost == best.cost && band.cost < kInf &&
         band.rank < best_rank)) {
      best.cost = band.cost;
      best.config = band.config;
      best_rank = band.rank;
    }
  }
  best.configs_explored = explored_total.load(std::memory_order_relaxed);
  if (best.cost == kInf) {
    return Status::FailedPrecondition(
        "no feasible resource configuration in the cluster grid");
  }
  return best;
}

namespace {

/// Running best of the switch-aware sweep: the cheapest cell seen so
/// far, with the earliest row-major rank among equal-cost cells. The
/// rank-aware update matters because the warm start is evaluated out of
/// rank order: a later-swept cell of equal cost but earlier rank must
/// still displace it, or plateau ties would resolve differently than in
/// the exhaustive scan.
struct Incumbent {
  resource::ResourceConfig config;
  double cost = kInf;
  int64_t rank = std::numeric_limits<int64_t>::max();

  void Offer(const resource::ResourceConfig& c, double cell_cost,
             int64_t cell_rank) {
    if (cell_cost < cost ||
        (cell_cost == cost && cell_cost < kInf && cell_rank < rank)) {
      config = c;
      cost = cell_cost;
      rank = cell_rank;
    }
  }
};

/// The prune rule. A block may be skipped iff its lower bound strictly
/// exceeds the incumbent's cost, or matches it while every cell of the
/// block ranks after the incumbent's cell (`block_first_rank` is the
/// smallest rank in the block). Either way no block cell can beat the
/// final winner or tie it at an earlier rank, so the sweep's outcome is
/// bit-identical to the exhaustive scan (proof in docs/PERF.md).
bool Prunable(double lower_bound, const Incumbent& inc,
              int64_t block_first_rank) {
  return lower_bound > inc.cost ||
         (lower_bound >= inc.cost && block_first_rank > inc.rank);
}

/// Geometry of one grid sweep, shared by the sequential and banded
/// paths so cell arithmetic is identical everywhere.
struct GridGeometry {
  double cs_min, cs_step, nc_min, nc_step;
  int64_t cs_points, nc_points;

  explicit GridGeometry(const resource::ClusterConditions& cluster)
      : cs_min(cluster.min().dim(resource::kContainerSizeGb)),
        cs_step(cluster.step().dim(resource::kContainerSizeGb)),
        nc_min(cluster.min().dim(resource::kNumContainers)),
        nc_step(cluster.step().dim(resource::kNumContainers)),
        cs_points(cluster.GridPoints(resource::kContainerSizeGb)),
        nc_points(cluster.GridPoints(resource::kNumContainers)) {}

  double CsAt(int64_t i) const {
    return cs_min + static_cast<double>(i) * cs_step;
  }
  double NcAt(int64_t j) const {
    return nc_min + static_cast<double>(j) * nc_step;
  }
  resource::ResourceConfig CellAt(int64_t i, int64_t j) const {
    return resource::ResourceConfig(CsAt(i), NcAt(j));
  }
  int64_t RankOf(int64_t i, int64_t j) const { return i * nc_points + j; }
};

/// Per-band sweep state and counters.
struct SweepStats {
  int64_t explored = 0;
  int64_t pruned = 0;
  int64_t bound_probes = 0;
};

/// Sweeps rows [row_begin, row_end) in rank order with two-level
/// branch-and-bound (row box first, then blocks of `block_cells`),
/// updating `inc` and `stats`. `shared_best`, when non-null, is a
/// monotonically decreasing cross-band upper bound on the global
/// optimum; it strengthens only the *strict* prune rule (the rank rule
/// needs the incumbent's rank, which other bands cannot supply).
void SweepRows(const ResourceCostFn& cost, const GridGeometry& g,
               const ResourceBoxBoundFn& bound, int64_t block_cells,
               int64_t row_begin, int64_t row_end, Incumbent* inc,
               SweepStats* stats, std::atomic<double>* shared_best) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    const double cs = g.CsAt(i);
    // Strict prune threshold: anything > this cannot win. Stale reads
    // of shared_best are safe — the value only decreases, so a stale
    // (higher) value merely prunes less.
    const double global_cost =
        shared_best != nullptr
            ? std::min(inc->cost,
                       shared_best->load(std::memory_order_relaxed))
            : inc->cost;
    if (bound && (global_cost < kInf || inc->rank < g.RankOf(i, 0))) {
      ++stats->bound_probes;
      const double row_lb =
          bound(resource::ResourceConfig(cs, g.NcAt(0)),
                resource::ResourceConfig(cs, g.NcAt(g.nc_points - 1)));
      if (row_lb > global_cost ||
          Prunable(row_lb, *inc, g.RankOf(i, 0))) {
        stats->pruned += g.nc_points;
        continue;
      }
    }
    for (int64_t j0 = 0; j0 < g.nc_points; j0 += block_cells) {
      const int64_t j1 = std::min(j0 + block_cells, g.nc_points);
      // Block-level probe, skipped when the row is a single block (the
      // row probe above already covered it).
      if (bound && (j0 > 0 || j1 < g.nc_points)) {
        const double block_global =
            shared_best != nullptr
                ? std::min(inc->cost,
                           shared_best->load(std::memory_order_relaxed))
                : inc->cost;
        if (block_global < kInf || inc->rank < g.RankOf(i, j0)) {
          ++stats->bound_probes;
          const double block_lb =
              bound(resource::ResourceConfig(cs, g.NcAt(j0)),
                    resource::ResourceConfig(cs, g.NcAt(j1 - 1)));
          if (block_lb > block_global ||
              Prunable(block_lb, *inc, g.RankOf(i, j0))) {
            stats->pruned += j1 - j0;
            continue;
          }
        }
      }
      for (int64_t j = j0; j < j1; ++j) {
        const resource::ResourceConfig config = g.CellAt(i, j);
        ++stats->explored;
        const double c = Sanitize(cost(config));
        inc->Offer(config, c, g.RankOf(i, j));
      }
    }
    if (shared_best != nullptr && inc->cost < kInf) {
      // Publish improvements: lower shared_best to the band's best.
      double seen = shared_best->load(std::memory_order_relaxed);
      while (inc->cost < seen &&
             !shared_best->compare_exchange_weak(
                 seen, inc->cost, std::memory_order_relaxed)) {
      }
    }
  }
}

}  // namespace

Result<ResourcePlanResult> SwitchAwareGridResourcePlanner::PlanResources(
    const ResourceCostFn& cost,
    const resource::ClusterConditions& cluster) const {
  return PlanResourcesWithHints(cost, cluster, ResourceSearchHints{});
}

Result<ResourcePlanResult>
SwitchAwareGridResourcePlanner::PlanResourcesWithHints(
    const ResourceCostFn& cost, const resource::ClusterConditions& cluster,
    const ResourceSearchHints& hints) const {
  const GridGeometry g(cluster);
  Incumbent inc;
  SweepStats stats;

  // Warm start: snap the previous optimum onto *this* grid by index
  // (BHJ feasibility can shift the grid origin between searches, so the
  // raw config may sit off-grid) and evaluate it at its true rank. The
  // cell is evaluated again when its block survives pruning — the
  // double evaluation is the price of keeping `explored` an honest
  // count of cost-function calls.
  int64_t warm_rank = -1;
  if (hints.warm_start.has_value()) {
    const int64_t i = static_cast<int64_t>(std::llround(
        (hints.warm_start->dim(resource::kContainerSizeGb) - g.cs_min) /
        g.cs_step));
    const int64_t j = static_cast<int64_t>(std::llround(
        (hints.warm_start->dim(resource::kNumContainers) - g.nc_min) /
        g.nc_step));
    if (i >= 0 && i < g.cs_points && j >= 0 && j < g.nc_points) {
      const resource::ResourceConfig config = g.CellAt(i, j);
      ++stats.explored;
      const double c = Sanitize(cost(config));
      warm_rank = g.RankOf(i, j);
      inc.Offer(config, c, warm_rank);
    }
  }

  const bool parallel = pool_ != nullptr && pool_->size() > 1 &&
                        cluster.TotalGridSize() >= min_parallel_cells_;
  if (!parallel) {
    SweepRows(cost, g, hints.box_lower_bound, block_cells_, 0, g.cs_points,
              &inc, &stats, nullptr);
  } else {
    // Banded sweep: each ParallelFor chunk keeps a local incumbent (the
    // rank rule is only valid against cells of earlier rank *within the
    // band*, which a local incumbent guarantees) and shares evaluated
    // costs through `shared_best` for cross-band strict pruning. Bands
    // merge by (cost, rank), identical to the parallel brute force, so
    // the banding — and the work-stealing chunk claim underneath — never
    // shows in the result.
    std::atomic<double> shared_best{inc.cost};
    std::mutex merge_mu;
    std::vector<BandBest> bands;
    std::atomic<int64_t> explored_total{stats.explored};
    std::atomic<int64_t> pruned_total{0};
    std::atomic<int64_t> probes_total{0};
    const ResourceBoxBoundFn& bound = hints.box_lower_bound;
    const int64_t block_cells = block_cells_;
    pool_->ParallelFor(g.cs_points, [&](int64_t row_begin, int64_t row_end) {
      Incumbent local;
      SweepStats local_stats;
      SweepRows(cost, g, bound, block_cells, row_begin, row_end, &local,
                &local_stats, &shared_best);
      explored_total.fetch_add(local_stats.explored,
                               std::memory_order_relaxed);
      pruned_total.fetch_add(local_stats.pruned, std::memory_order_relaxed);
      probes_total.fetch_add(local_stats.bound_probes,
                             std::memory_order_relaxed);
      if (local.cost < kInf) {
        BandBest band;
        band.config = local.config;
        band.cost = local.cost;
        band.rank = local.rank;
        std::lock_guard<std::mutex> lock(merge_mu);
        bands.push_back(band);
      }
    });
    for (const BandBest& band : bands) {
      inc.Offer(band.config, band.cost, band.rank);
    }
    stats.explored = explored_total.load(std::memory_order_relaxed);
    stats.pruned = pruned_total.load(std::memory_order_relaxed);
    stats.bound_probes = probes_total.load(std::memory_order_relaxed);
  }

  if (inc.cost == kInf) {
    return Status::FailedPrecondition(
        "no feasible resource configuration in the cluster grid");
  }
  ResourcePlanResult best;
  best.config = inc.config;
  best.cost = inc.cost;
  best.configs_explored = stats.explored;
  best.cells_pruned = stats.pruned;
  best.bound_probes = stats.bound_probes;
  best.warm_start_won = warm_rank >= 0 && inc.rank == warm_rank;
  return best;
}

Result<ResourcePlanResult> HillClimbResourcePlanner::PlanResources(
    const ResourceCostFn& cost,
    const resource::ClusterConditions& cluster) const {
  // Algorithm 1, lines 1-3: step sizes come from the cluster's discrete
  // grid; candidate steps are one backward and one forward; the climb
  // starts from the smallest resources unless overridden.
  const resource::ResourceConfig& step = cluster.step();
  static constexpr double kCandidates[] = {-1.0, 1.0};
  resource::ResourceConfig curr =
      has_start_ ? cluster.SnapToGrid(start_) : cluster.min();

  ResourcePlanResult result;
  int64_t explored = 0;

  // Lines 4-21: climb until no candidate step improves the cost.
  while (true) {
    const double curr_cost = Sanitize(cost(curr));
    ++explored;
    double best_cost = curr_cost;
    for (size_t dim = 0; dim < resource::kNumResourceDims; ++dim) {
      int best_candidate = -1;
      for (int j = 0; j < 2; ++j) {
        const double delta = step.dim(dim) * kCandidates[j];
        const double moved = curr.dim(dim) + delta;
        if (moved > cluster.max().dim(dim) + 1e-9 ||
            moved < cluster.min().dim(dim) - 1e-9) {
          continue;
        }
        curr.set_dim(dim, moved);           // apply
        const double temp = Sanitize(cost(curr));  // probe
        ++explored;
        curr.set_dim(dim, moved - delta);   // backtrack
        if (temp < best_cost) {
          best_cost = temp;
          best_candidate = j;
        }
      }
      if (best_candidate != -1) {
        curr.set_dim(dim,
                     curr.dim(dim) + step.dim(dim) * kCandidates[best_candidate]);
      }
    }
    if (best_cost >= curr_cost) {
      // Lines 20-21: no better neighbor exists.
      result.config = curr;
      result.cost = curr_cost;
      result.configs_explored = explored;
      break;
    }
  }

  if (result.cost == kInf) {
    return Status::FailedPrecondition(
        "hill climb start (and its neighborhood) is infeasible; restrict "
        "the cluster conditions to the feasible region first");
  }
  return result;
}

Result<ResourcePlanResult> AcceleratedHillClimbResourcePlanner::PlanResources(
    const ResourceCostFn& cost,
    const resource::ClusterConditions& cluster) const {
  resource::ResourceConfig curr =
      has_start_ ? cluster.SnapToGrid(start_) : cluster.min();
  int64_t explored = 0;
  double curr_cost = Sanitize(cost(curr));
  ++explored;

  bool improved = true;
  while (improved) {
    improved = false;
    for (size_t dim = 0; dim < resource::kNumResourceDims; ++dim) {
      for (double direction : {1.0, -1.0}) {
        // Doubling line search along this direction: keep moving while
        // the cost improves, doubling the stride; stop at the first miss
        // or at the cluster boundary.
        double stride = cluster.step().dim(dim);
        while (true) {
          const double moved = curr.dim(dim) + direction * stride;
          if (moved > cluster.max().dim(dim) + 1e-9 ||
              moved < cluster.min().dim(dim) - 1e-9) {
            break;
          }
          resource::ResourceConfig candidate = curr;
          candidate.set_dim(dim, moved);
          const double c = Sanitize(cost(candidate));
          ++explored;
          if (c < curr_cost) {
            curr = candidate;
            curr_cost = c;
            improved = true;
            stride *= 2.0;
          } else {
            break;
          }
        }
      }
    }
  }

  if (curr_cost == kInf) {
    return Status::FailedPrecondition(
        "accelerated hill climb start is infeasible; restrict the cluster "
        "conditions to the feasible region first");
  }
  ResourcePlanResult result;
  result.config = curr;
  result.cost = curr_cost;
  result.configs_explored = explored;
  return result;
}

}  // namespace raqo::core
