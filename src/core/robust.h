#ifndef RAQO_CORE_ROBUST_H_
#define RAQO_CORE_ROBUST_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "core/raqo_cost_evaluator.h"
#include "cost/cost_model.h"
#include "plan/plan_node.h"
#include "resource/cluster_conditions.h"
#include "resource/pricing.h"

namespace raqo::core {

/// One hypothetical degradation of the cluster: the maxima of both
/// resource dimensions are scaled (<= 1.0 shrinks the cluster, as when
/// other tenants grab capacity between optimization and execution).
struct ClusterPerturbation {
  double container_scale = 1.0;
  double count_scale = 1.0;
};

/// Options of the robustness analysis.
struct RobustnessOptions {
  /// The degradations a plan is probed against. The default set spans
  /// "as planned" down to "a quarter of the containers are left".
  std::vector<ClusterPerturbation> perturbations = {
      {1.0, 1.0}, {1.0, 0.5}, {0.5, 1.0}, {0.5, 0.5}, {1.0, 0.25}};
  /// Scalarization for the per-perturbation cost.
  double time_weight = 1.0;
  /// Resource re-planning under each perturbation.
  RaqoEvaluatorOptions evaluator;
};

/// How a fixed plan shape holds up across cluster degradations.
struct RobustnessReport {
  /// Scalarized cost per perturbation; +infinity where the plan cannot
  /// run at all (e.g. a broadcast build side that fits no remaining
  /// container).
  std::vector<double> per_perturbation_cost;
  /// Worst finite-or-infinite cost (the minimax objective).
  double worst_cost = 0.0;
  /// Mean over the feasible perturbations.
  double mean_feasible_cost = 0.0;
  /// Number of perturbations where the plan is infeasible.
  int infeasible_count = 0;

  bool AlwaysFeasible() const { return infeasible_count == 0; }
};

/// Implements the paper's "Adaptive RAQO" research-agenda idea of picking
/// plans resilient to cluster-condition changes (Section VIII): the
/// plan's *shape* is frozen and its resources are re-planned under each
/// perturbed cluster, yielding the cost profile the plan would have if
/// the cluster degraded between optimization and execution.
Result<RobustnessReport> EvaluatePlanRobustness(
    const catalog::Catalog& catalog, const cost::JoinCostModels& models,
    const resource::ClusterConditions& base_cluster,
    const resource::PricingModel& pricing, const plan::PlanNode& plan,
    const RobustnessOptions& options = RobustnessOptions());

/// Picks the most resilient plan out of `candidates` (e.g. a Pareto
/// frontier): always-feasible plans beat sometimes-infeasible ones; ties
/// break on the minimax (worst-case) cost. Returns the winning index.
Result<size_t> PickRobustPlanIndex(
    const catalog::Catalog& catalog, const cost::JoinCostModels& models,
    const resource::ClusterConditions& base_cluster,
    const resource::PricingModel& pricing,
    const std::vector<const plan::PlanNode*>& candidates,
    const RobustnessOptions& options = RobustnessOptions());

}  // namespace raqo::core

#endif  // RAQO_CORE_ROBUST_H_
