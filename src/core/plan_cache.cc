#include "core/plan_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace raqo::core {

bool SortedArrayIndex::Insert(const CachedResourcePlan& plan) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), plan.key_gb,
      [](const CachedResourcePlan& e, double k) { return e.key_gb < k; });
  if (it != entries_.end() && it->key_gb == plan.key_gb) {
    *it = plan;  // overwrite
    return false;
  }
  entries_.insert(it, plan);
  return true;
}

std::optional<CachedResourcePlan> SortedArrayIndex::FindExact(
    double key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const CachedResourcePlan& e, double k) { return e.key_gb < k; });
  if (it != entries_.end() && it->key_gb == key) return *it;
  return std::nullopt;
}

std::vector<CachedResourcePlan> SortedArrayIndex::FindNeighbors(
    double key, double threshold) const {
  std::vector<CachedResourcePlan> out;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key - threshold,
      [](const CachedResourcePlan& e, double k) { return e.key_gb < k; });
  for (; it != entries_.end() && it->key_gb <= key + threshold; ++it) {
    out.push_back(*it);
  }
  return out;
}

void SortedArrayIndex::ForEach(
    const std::function<void(const CachedResourcePlan&)>& fn) const {
  for (const CachedResourcePlan& entry : entries_) fn(entry);
}

bool CsbTreeIndex::Insert(const CachedResourcePlan& plan) {
  if (std::optional<int64_t> existing = tree_.Find(plan.key_gb)) {
    payloads_[static_cast<size_t>(*existing)] = plan;
    return false;
  }
  payloads_.push_back(plan);
  tree_.Insert(plan.key_gb, static_cast<int64_t>(payloads_.size() - 1));
  return true;
}

std::optional<CachedResourcePlan> CsbTreeIndex::FindExact(double key) const {
  if (std::optional<int64_t> handle = tree_.Find(key)) {
    return payloads_[static_cast<size_t>(*handle)];
  }
  return std::nullopt;
}

std::vector<CachedResourcePlan> CsbTreeIndex::FindNeighbors(
    double key, double threshold) const {
  std::vector<CachedResourcePlan> out;
  tree_.Scan(key - threshold, key + threshold, [&](double, int64_t handle) {
    out.push_back(payloads_[static_cast<size_t>(handle)]);
  });
  return out;
}

void CsbTreeIndex::ForEach(
    const std::function<void(const CachedResourcePlan&)>& fn) const {
  // The tree scan yields keys ascending; payloads_ holds them insertion
  // ordered, so iterate through the tree for the ordering promise.
  tree_.Scan(-std::numeric_limits<double>::infinity(),
             std::numeric_limits<double>::infinity(),
             [&](double, int64_t handle) {
               fn(payloads_[static_cast<size_t>(handle)]);
             });
}

std::unique_ptr<ResourcePlanIndex> MakeResourcePlanIndex(
    CacheIndexKind kind) {
  if (kind == CacheIndexKind::kCsbTree) {
    return std::make_unique<CsbTreeIndex>();
  }
  return std::make_unique<SortedArrayIndex>();
}

ShardedResourcePlanIndex::ShardedResourcePlanIndex(CacheIndexKind inner,
                                                   size_t num_shards)
    : inner_(inner), shards_(std::max<size_t>(1, num_shards)) {
  for (Shard& shard : shards_) shard.index = MakeResourcePlanIndex(inner);
}

std::unique_lock<std::mutex> ShardedResourcePlanIndex::LockShard(
    const Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Contended: another planner thread holds this stripe. Only now is
    // the clock read, so the uncontended path stays wait-free of timing
    // overhead.
    Stopwatch waited;
    lock.lock();
    shard.contended_acquires.fetch_add(1, std::memory_order_relaxed);
    shard.lock_wait_ns.fetch_add(
        static_cast<int64_t>(waited.ElapsedMicros() * 1e3),
        std::memory_order_relaxed);
  }
  return lock;
}

size_t ShardedResourcePlanIndex::ShardIndexFor(double key) const {
  // +0.0 and -0.0 hash alike, matching their key equality.
  if (key == 0.0) key = 0.0;
  return std::hash<double>{}(key) % shards_.size();
}

const ShardedResourcePlanIndex::Shard& ShardedResourcePlanIndex::ShardFor(
    double key) const {
  return shards_[ShardIndexFor(key)];
}

ShardedResourcePlanIndex::Shard& ShardedResourcePlanIndex::ShardFor(
    double key) {
  return const_cast<Shard&>(
      static_cast<const ShardedResourcePlanIndex*>(this)->ShardFor(key));
}

bool ShardedResourcePlanIndex::Insert(const CachedResourcePlan& plan) {
  Shard& shard = ShardFor(plan.key_gb);
  shard.inserts.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock = LockShard(shard);
  return shard.index->Insert(plan);
}

size_t ShardedResourcePlanIndex::InsertBatch(
    const std::vector<CachedResourcePlan>& plans) {
  // Group by stripe first (no locks held), then drain each group under
  // one acquisition of its stripe lock. Stripes are visited in index
  // order and never two at once, so batched flushes cannot deadlock
  // against each other or against per-entry inserters.
  std::vector<std::vector<const CachedResourcePlan*>> by_shard(
      shards_.size());
  for (const CachedResourcePlan& plan : plans) {
    by_shard[ShardIndexFor(plan.key_gb)].push_back(&plan);
  }
  size_t inserted = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    shard.inserts.fetch_add(static_cast<int64_t>(by_shard[s].size()),
                            std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock = LockShard(shard);
    for (const CachedResourcePlan* plan : by_shard[s]) {
      if (shard.index->Insert(*plan)) ++inserted;
    }
  }
  return inserted;
}

std::optional<CachedResourcePlan> ShardedResourcePlanIndex::FindExact(
    double key) const {
  const Shard& shard = ShardFor(key);
  shard.lookups.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock = LockShard(shard);
  return shard.index->FindExact(key);
}

std::vector<CachedResourcePlan> ShardedResourcePlanIndex::FindNeighbors(
    double key, double threshold) const {
  // Hash striping scatters a key range over every shard; gather per
  // shard (each under its own lock) and restore the ascending order.
  std::vector<CachedResourcePlan> out;
  for (const Shard& shard : shards_) {
    shard.lookups.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock = LockShard(shard);
    std::vector<CachedResourcePlan> part =
        shard.index->FindNeighbors(key, threshold);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end(),
            [](const CachedResourcePlan& a, const CachedResourcePlan& b) {
              return a.key_gb < b.key_gb;
            });
  return out;
}

void ShardedResourcePlanIndex::ForEach(
    const std::function<void(const CachedResourcePlan&)>& fn) const {
  // Hash striping scatters the key order across shards: gather a
  // snapshot per shard (each under its own lock, never two at once),
  // restore the global ascending order, then visit outside all locks —
  // so `fn` may take as long as it likes without blocking planners.
  std::vector<CachedResourcePlan> all;
  for (const Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock = LockShard(shard);
    shard.index->ForEach(
        [&](const CachedResourcePlan& entry) { all.push_back(entry); });
  }
  std::sort(all.begin(), all.end(),
            [](const CachedResourcePlan& a, const CachedResourcePlan& b) {
              return a.key_gb < b.key_gb;
            });
  for (const CachedResourcePlan& entry : all) fn(entry);
}

size_t ShardedResourcePlanIndex::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.index->size();
  }
  return total;
}

const char* ShardedResourcePlanIndex::name() const {
  return inner_ == CacheIndexKind::kCsbTree ? "sharded-csb-tree"
                                            : "sharded-sorted-array";
}

std::vector<ShardStats> ShardedResourcePlanIndex::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    ShardStats s;
    s.lookups = shard.lookups.load(std::memory_order_relaxed);
    s.inserts = shard.inserts.load(std::memory_order_relaxed);
    s.contended_acquires =
        shard.contended_acquires.load(std::memory_order_relaxed);
    s.lock_wait_ns = shard.lock_wait_ns.load(std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock = LockShard(shard);
      s.entries = shard.index->size();
    }
    out.push_back(s);
  }
  return out;
}

const char* CacheLookupModeName(CacheLookupMode mode) {
  switch (mode) {
    case CacheLookupMode::kExact:
      return "exact";
    case CacheLookupMode::kNearestNeighbor:
      return "nearest-neighbor";
    case CacheLookupMode::kWeightedAverage:
      return "weighted-average";
  }
  return "?";
}

ResourcePlanCache::ResourcePlanCache(CacheLookupMode mode,
                                     double threshold_gb,
                                     CacheIndexKind index_kind,
                                     size_t shards)
    : mode_(mode),
      threshold_gb_(threshold_gb),
      index_kind_(index_kind),
      shards_(shards) {
  RAQO_CHECK(threshold_gb >= 0.0) << "cache threshold must be non-negative";
}

ResourcePlanIndex* ResourcePlanCache::FindIndex(
    const std::string& model_name) const {
  auto it = per_model_.find(model_name);
  return it == per_model_.end() ? nullptr : it->second.get();
}

ResourcePlanIndex& ResourcePlanCache::IndexFor(
    const std::string& model_name) {
  std::unique_ptr<ResourcePlanIndex>& slot = per_model_[model_name];
  if (slot == nullptr) {
    if (shards_ > 0) {
      slot = std::make_unique<ShardedResourcePlanIndex>(index_kind_, shards_);
    } else {
      slot = MakeResourcePlanIndex(index_kind_);
    }
  }
  return *slot;
}

namespace {

/// Exact mode stores one entry per (smaller, larger) input pair: the
/// index key mixes the bit patterns of both sizes into a 53-bit
/// integer-valued double (exactly representable, totally ordered), so
/// distinct pairs land on distinct keys. An arithmetic fold such as
/// ss + 1e6 * ls would round away small smaller-side differences once
/// the larger side dominates the magnitude, silently overwriting
/// distinct pairs. Residual hash collisions (~n^2 / 2^54) are harmless:
/// lookups verify the true pair on the entry itself.
double ExactStorageKey(double smaller_gb, double larger_gb) {
  if (larger_gb == 0.0) return smaller_gb;
  uint64_t a = 0;
  uint64_t b = 0;
  std::memcpy(&a, &smaller_gb, sizeof(a));
  std::memcpy(&b, &larger_gb, sizeof(b));
  uint64_t h = a * 0x9E3779B97F4A7C15ull;
  h ^= h >> 32;
  h += b;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 29;
  return static_cast<double>(h >> 11);
}

}  // namespace

std::optional<CachedResourcePlan> ResourcePlanCache::Lookup(
    const std::string& model_name, double key_gb,
    std::optional<double> larger_gb) {
  const bool metrics_on = obs::MetricsOn();
  const bool tracing_on = obs::TracingOn();
  if (!metrics_on && !tracing_on) {
    return LookupImpl(model_name, key_gb, larger_gb);
  }

  Stopwatch timer;
  obs::Span span = obs::DefaultTracer().StartSpan("cache.lookup");
  std::optional<CachedResourcePlan> result =
      LookupImpl(model_name, key_gb, larger_gb);
  if (span.recording()) {
    span.SetAttr("model", model_name);
    span.SetAttr("key_gb", key_gb);
    span.SetAttr("hit", static_cast<int64_t>(result.has_value()));
  }
  if (metrics_on) {
    static obs::Counter* hit_count =
        obs::DefaultMetrics().GetCounter("cache.lookup.hit");
    static obs::Counter* miss_count =
        obs::DefaultMetrics().GetCounter("cache.lookup.miss");
    static obs::Histogram* latency =
        obs::DefaultMetrics().GetHistogram("cache.lookup.wall_us");
    (result.has_value() ? hit_count : miss_count)->Add(1);
    latency->Record(timer.ElapsedMicros());
  }
  return result;
}

std::optional<CachedResourcePlan> ResourcePlanCache::LookupImpl(
    const std::string& model_name, double key_gb,
    std::optional<double> larger_gb) {
  std::shared_lock<std::shared_mutex> map_lock(map_mu_);
  const ResourcePlanIndex* index = FindIndex(model_name);
  if (index == nullptr) {
    // No plan was ever recorded for this model: a miss, without taking
    // the exclusive lock to materialize an empty index.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  // Exact mode with a larger-size guard: the entry must have been
  // computed for this very (smaller, larger) pair — a configuration
  // reused across pairs would depend on which join populated the cache
  // first, which is acceptable for the similarity modes but fatal for
  // determinism under concurrent sharing. The pair is re-verified on the
  // entry, so folded-key aliasing can never produce a false hit.
  if (mode_ == CacheLookupMode::kExact && larger_gb.has_value()) {
    std::optional<CachedResourcePlan> exact =
        index->FindExact(ExactStorageKey(key_gb, *larger_gb));
    if (exact && exact->smaller_gb == key_gb &&
        exact->larger_gb == *larger_gb) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      exact->key_gb = key_gb;  // restore the caller-facing key
      return exact;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  // All modes try an exact match first.
  if (std::optional<CachedResourcePlan> exact = index->FindExact(key_gb)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return exact;
  }
  if (mode_ != CacheLookupMode::kExact && threshold_gb_ > 0.0) {
    const std::vector<CachedResourcePlan> neighbors =
        index->FindNeighbors(key_gb, threshold_gb_);
    if (!neighbors.empty()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (mode_ == CacheLookupMode::kNearestNeighbor) {
        const CachedResourcePlan* best = &neighbors[0];
        for (const CachedResourcePlan& n : neighbors) {
          if (std::fabs(n.key_gb - key_gb) <
              std::fabs(best->key_gb - key_gb)) {
            best = &n;
          }
        }
        return *best;
      }
      // Weighted average: inverse-distance weighting of the neighboring
      // resource configurations and costs.
      double weight_sum = 0.0;
      double cs = 0.0;
      double nc = 0.0;
      double cost = 0.0;
      for (const CachedResourcePlan& n : neighbors) {
        const double w = 1.0 / (std::fabs(n.key_gb - key_gb) + 1e-9);
        weight_sum += w;
        cs += w * n.config.container_size_gb();
        nc += w * n.config.num_containers();
        cost += w * n.cost;
      }
      CachedResourcePlan blended;
      blended.key_gb = key_gb;
      blended.config = resource::ResourceConfig(cs / weight_sum,
                                                nc / weight_sum);
      blended.cost = cost / weight_sum;
      return blended;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

namespace {

/// Approximate resident footprint of one cached entry: the plan struct
/// plus the per-key index slot it occupies (key + payload handle).
constexpr int64_t kApproxEntryBytes =
    static_cast<int64_t>(sizeof(CachedResourcePlan)) + 16;

}  // namespace

void ResourcePlanCache::Insert(const std::string& model_name,
                               const CachedResourcePlan& plan) {
  CachedResourcePlan entry = plan;
  entry.smaller_gb = plan.key_gb;
  if (mode_ == CacheLookupMode::kExact) {
    // One entry per (smaller, larger) pair; with no larger size recorded
    // the storage key degenerates to the plain data characteristic, so
    // guard-less callers see the paper's original exact-match layout.
    entry.key_gb = ExactStorageKey(plan.key_gb, plan.larger_gb);
  }
  bool inserted = false;
  bool done = false;
  {
    std::shared_lock<std::shared_mutex> map_lock(map_mu_);
    if (ResourcePlanIndex* index = FindIndex(model_name)) {
      inserted = index->Insert(entry);
      done = true;
    }
  }
  if (!done) {
    // First insert for this model: create the index under the exclusive
    // lock (IndexFor re-checks, so two racing creators agree).
    std::unique_lock<std::shared_mutex> map_lock(map_mu_);
    inserted = IndexFor(model_name).Insert(entry);
  }
  if (inserted) {
    const int64_t entries =
        entry_count_.fetch_add(1, std::memory_order_relaxed) + 1;
    const int64_t bytes =
        approx_bytes_.fetch_add(kApproxEntryBytes,
                                std::memory_order_relaxed) +
        kApproxEntryBytes;
    if (obs::MetricsOn()) {
      static obs::Gauge* entries_gauge =
          obs::DefaultMetrics().GetGauge("cache.entries");
      static obs::Gauge* bytes_gauge =
          obs::DefaultMetrics().GetGauge("cache.bytes");
      entries_gauge->Set(static_cast<double>(entries));
      bytes_gauge->Set(static_cast<double>(bytes));
    }
  }
  // Fire the mutation observer strictly after every cache lock is
  // released: a listener journaling to disk or snapshotting the cache
  // (which re-enters via DumpEntries) must never nest under map_mu_ or
  // a shard stripe.
  if (CacheEventListener* listener =
          listener_.load(std::memory_order_acquire);
      listener != nullptr) {
    listener->OnInsert(model_name, plan);
  }
}

void ResourcePlanCache::InsertBatch(
    const std::vector<CacheEntryRecord>& entries) {
  if (entries.empty()) return;
  if (entries.size() == 1) {
    Insert(entries[0].model, entries[0].plan);
    return;
  }

  // Fold the storage keys up front (no locks held) and group by model;
  // within a model, batch order is preserved so duplicate keys resolve
  // to the last occurrence, exactly as repeated Insert calls would.
  std::map<std::string, std::vector<CachedResourcePlan>> by_model;
  for (const CacheEntryRecord& record : entries) {
    CachedResourcePlan folded = record.plan;
    folded.smaller_gb = record.plan.key_gb;
    if (mode_ == CacheLookupMode::kExact) {
      folded.key_gb =
          ExactStorageKey(record.plan.key_gb, record.plan.larger_gb);
    }
    by_model[record.model].push_back(folded);
  }

  const auto insert_group =
      [this](ResourcePlanIndex& index,
             const std::vector<CachedResourcePlan>& plans) -> size_t {
    if (shards_ > 0) {
      // shards_ > 0 means every per-model index is sharded; the batch
      // path takes each stripe lock once for the whole group.
      return static_cast<ShardedResourcePlanIndex&>(index).InsertBatch(
          plans);
    }
    size_t inserted = 0;
    for (const CachedResourcePlan& plan : plans) {
      if (index.Insert(plan)) ++inserted;
    }
    return inserted;
  };

  int64_t inserted = 0;
  for (const auto& [model, plans] : by_model) {
    bool done = false;
    {
      std::shared_lock<std::shared_mutex> map_lock(map_mu_);
      if (ResourcePlanIndex* index = FindIndex(model)) {
        inserted += static_cast<int64_t>(insert_group(*index, plans));
        done = true;
      }
    }
    if (!done) {
      std::unique_lock<std::shared_mutex> map_lock(map_mu_);
      inserted += static_cast<int64_t>(insert_group(IndexFor(model), plans));
    }
  }

  if (inserted > 0) {
    const int64_t count =
        entry_count_.fetch_add(inserted, std::memory_order_relaxed) +
        inserted;
    const int64_t delta = inserted * kApproxEntryBytes;
    const int64_t bytes =
        approx_bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (obs::MetricsOn()) {
      static obs::Gauge* entries_gauge =
          obs::DefaultMetrics().GetGauge("cache.entries");
      static obs::Gauge* bytes_gauge =
          obs::DefaultMetrics().GetGauge("cache.bytes");
      entries_gauge->Set(static_cast<double>(count));
      bytes_gauge->Set(static_cast<double>(bytes));
    }
  }
  // Per-entry listener callbacks in batch order, outside all locks —
  // the persistence journal sees the identical record stream it would
  // have seen from per-entry Insert calls.
  if (CacheEventListener* listener =
          listener_.load(std::memory_order_acquire);
      listener != nullptr) {
    for (const CacheEntryRecord& record : entries) {
      listener->OnInsert(record.model, record.plan);
    }
  }
}

void ResourcePlanCache::Clear() {
  std::unique_lock<std::shared_mutex> map_lock(map_mu_);
  per_model_.clear();
  entry_count_.store(0, std::memory_order_relaxed);
  approx_bytes_.store(0, std::memory_order_relaxed);
  if (obs::MetricsOn()) {
    static obs::Gauge* entries_gauge =
        obs::DefaultMetrics().GetGauge("cache.entries");
    static obs::Gauge* bytes_gauge =
        obs::DefaultMetrics().GetGauge("cache.bytes");
    entries_gauge->Set(0.0);
    bytes_gauge->Set(0.0);
  }
}

std::vector<CacheEntryRecord> ResourcePlanCache::DumpEntries() const {
  std::vector<CacheEntryRecord> out;
  {
    std::shared_lock<std::shared_mutex> map_lock(map_mu_);
    for (const auto& [model, index] : per_model_) {
      index->ForEach([&](const CachedResourcePlan& stored) {
        CacheEntryRecord record;
        record.model = model;
        record.plan = stored;
        // Undo exact-mode key folding: the logical key is the original
        // data characteristic, which Insert preserved in smaller_gb.
        // Re-Inserting the record re-derives the identical storage key.
        record.plan.key_gb = stored.smaller_gb;
        out.push_back(std::move(record));
      });
    }
  }
  // The per-model map iterates sorted already; within a model the index
  // yields storage-key order, which under exact-mode folding is not the
  // logical order. Impose the canonical (model, smaller, larger) order
  // so two dumps of equal caches are byte-identical when serialized.
  std::sort(out.begin(), out.end(),
            [](const CacheEntryRecord& a, const CacheEntryRecord& b) {
              if (a.model != b.model) return a.model < b.model;
              if (a.plan.smaller_gb != b.plan.smaller_gb) {
                return a.plan.smaller_gb < b.plan.smaller_gb;
              }
              return a.plan.larger_gb < b.plan.larger_gb;
            });
  return out;
}

size_t ResourcePlanCache::size() const {
  std::shared_lock<std::shared_mutex> map_lock(map_mu_);
  size_t total = 0;
  for (const auto& [name, index] : per_model_) total += index->size();
  return total;
}

std::vector<ShardStats> ResourcePlanCache::shard_stats() const {
  if (shards_ == 0) return {};
  std::vector<ShardStats> out;
  std::shared_lock<std::shared_mutex> map_lock(map_mu_);
  for (const auto& [name, index] : per_model_) {
    // shards_ > 0 means every per-model index is sharded.
    const auto& sharded =
        static_cast<const ShardedResourcePlanIndex&>(*index);
    std::vector<ShardStats> per = sharded.shard_stats();
    if (out.size() < per.size()) out.resize(per.size());
    for (size_t i = 0; i < per.size(); ++i) {
      out[i].entries += per[i].entries;
      out[i].lookups += per[i].lookups;
      out[i].inserts += per[i].inserts;
      out[i].contended_acquires += per[i].contended_acquires;
      out[i].lock_wait_ns += per[i].lock_wait_ns;
    }
  }
  return out;
}

}  // namespace raqo::core
