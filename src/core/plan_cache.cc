#include "core/plan_cache.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace raqo::core {

void SortedArrayIndex::Insert(const CachedResourcePlan& plan) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), plan.key_gb,
      [](const CachedResourcePlan& e, double k) { return e.key_gb < k; });
  if (it != entries_.end() && it->key_gb == plan.key_gb) {
    *it = plan;  // overwrite
    return;
  }
  entries_.insert(it, plan);
}

std::optional<CachedResourcePlan> SortedArrayIndex::FindExact(
    double key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const CachedResourcePlan& e, double k) { return e.key_gb < k; });
  if (it != entries_.end() && it->key_gb == key) return *it;
  return std::nullopt;
}

std::vector<CachedResourcePlan> SortedArrayIndex::FindNeighbors(
    double key, double threshold) const {
  std::vector<CachedResourcePlan> out;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key - threshold,
      [](const CachedResourcePlan& e, double k) { return e.key_gb < k; });
  for (; it != entries_.end() && it->key_gb <= key + threshold; ++it) {
    out.push_back(*it);
  }
  return out;
}

void CsbTreeIndex::Insert(const CachedResourcePlan& plan) {
  if (std::optional<int64_t> existing = tree_.Find(plan.key_gb)) {
    payloads_[static_cast<size_t>(*existing)] = plan;
    return;
  }
  payloads_.push_back(plan);
  tree_.Insert(plan.key_gb, static_cast<int64_t>(payloads_.size() - 1));
}

std::optional<CachedResourcePlan> CsbTreeIndex::FindExact(double key) const {
  if (std::optional<int64_t> handle = tree_.Find(key)) {
    return payloads_[static_cast<size_t>(*handle)];
  }
  return std::nullopt;
}

std::vector<CachedResourcePlan> CsbTreeIndex::FindNeighbors(
    double key, double threshold) const {
  std::vector<CachedResourcePlan> out;
  tree_.Scan(key - threshold, key + threshold, [&](double, int64_t handle) {
    out.push_back(payloads_[static_cast<size_t>(handle)]);
  });
  return out;
}

const char* CacheLookupModeName(CacheLookupMode mode) {
  switch (mode) {
    case CacheLookupMode::kExact:
      return "exact";
    case CacheLookupMode::kNearestNeighbor:
      return "nearest-neighbor";
    case CacheLookupMode::kWeightedAverage:
      return "weighted-average";
  }
  return "?";
}

ResourcePlanCache::ResourcePlanCache(CacheLookupMode mode,
                                     double threshold_gb,
                                     CacheIndexKind index_kind)
    : mode_(mode), threshold_gb_(threshold_gb), index_kind_(index_kind) {
  RAQO_CHECK(threshold_gb >= 0.0) << "cache threshold must be non-negative";
}

ResourcePlanIndex& ResourcePlanCache::IndexFor(
    const std::string& model_name) {
  std::unique_ptr<ResourcePlanIndex>& slot = per_model_[model_name];
  if (slot == nullptr) {
    if (index_kind_ == CacheIndexKind::kCsbTree) {
      slot = std::make_unique<CsbTreeIndex>();
    } else {
      slot = std::make_unique<SortedArrayIndex>();
    }
  }
  return *slot;
}

std::optional<CachedResourcePlan> ResourcePlanCache::Lookup(
    const std::string& model_name, double key_gb) {
  ResourcePlanIndex& index = IndexFor(model_name);

  // All modes try an exact match first.
  if (std::optional<CachedResourcePlan> exact = index.FindExact(key_gb)) {
    ++stats_.hits;
    return exact;
  }
  if (mode_ != CacheLookupMode::kExact && threshold_gb_ > 0.0) {
    const std::vector<CachedResourcePlan> neighbors =
        index.FindNeighbors(key_gb, threshold_gb_);
    if (!neighbors.empty()) {
      ++stats_.hits;
      if (mode_ == CacheLookupMode::kNearestNeighbor) {
        const CachedResourcePlan* best = &neighbors[0];
        for (const CachedResourcePlan& n : neighbors) {
          if (std::fabs(n.key_gb - key_gb) <
              std::fabs(best->key_gb - key_gb)) {
            best = &n;
          }
        }
        return *best;
      }
      // Weighted average: inverse-distance weighting of the neighboring
      // resource configurations and costs.
      double weight_sum = 0.0;
      double cs = 0.0;
      double nc = 0.0;
      double cost = 0.0;
      for (const CachedResourcePlan& n : neighbors) {
        const double w = 1.0 / (std::fabs(n.key_gb - key_gb) + 1e-9);
        weight_sum += w;
        cs += w * n.config.container_size_gb();
        nc += w * n.config.num_containers();
        cost += w * n.cost;
      }
      CachedResourcePlan blended;
      blended.key_gb = key_gb;
      blended.config = resource::ResourceConfig(cs / weight_sum,
                                                nc / weight_sum);
      blended.cost = cost / weight_sum;
      return blended;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResourcePlanCache::Insert(const std::string& model_name,
                               const CachedResourcePlan& plan) {
  IndexFor(model_name).Insert(plan);
}

void ResourcePlanCache::Clear() { per_model_.clear(); }

size_t ResourcePlanCache::size() const {
  size_t total = 0;
  for (const auto& [name, index] : per_model_) total += index->size();
  return total;
}

}  // namespace raqo::core
