#include "core/plan_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace raqo::core {

void SortedArrayIndex::Insert(const CachedResourcePlan& plan) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), plan.key_gb,
      [](const CachedResourcePlan& e, double k) { return e.key_gb < k; });
  if (it != entries_.end() && it->key_gb == plan.key_gb) {
    *it = plan;  // overwrite
    return;
  }
  entries_.insert(it, plan);
}

std::optional<CachedResourcePlan> SortedArrayIndex::FindExact(
    double key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const CachedResourcePlan& e, double k) { return e.key_gb < k; });
  if (it != entries_.end() && it->key_gb == key) return *it;
  return std::nullopt;
}

std::vector<CachedResourcePlan> SortedArrayIndex::FindNeighbors(
    double key, double threshold) const {
  std::vector<CachedResourcePlan> out;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key - threshold,
      [](const CachedResourcePlan& e, double k) { return e.key_gb < k; });
  for (; it != entries_.end() && it->key_gb <= key + threshold; ++it) {
    out.push_back(*it);
  }
  return out;
}

void CsbTreeIndex::Insert(const CachedResourcePlan& plan) {
  if (std::optional<int64_t> existing = tree_.Find(plan.key_gb)) {
    payloads_[static_cast<size_t>(*existing)] = plan;
    return;
  }
  payloads_.push_back(plan);
  tree_.Insert(plan.key_gb, static_cast<int64_t>(payloads_.size() - 1));
}

std::optional<CachedResourcePlan> CsbTreeIndex::FindExact(double key) const {
  if (std::optional<int64_t> handle = tree_.Find(key)) {
    return payloads_[static_cast<size_t>(*handle)];
  }
  return std::nullopt;
}

std::vector<CachedResourcePlan> CsbTreeIndex::FindNeighbors(
    double key, double threshold) const {
  std::vector<CachedResourcePlan> out;
  tree_.Scan(key - threshold, key + threshold, [&](double, int64_t handle) {
    out.push_back(payloads_[static_cast<size_t>(handle)]);
  });
  return out;
}

std::unique_ptr<ResourcePlanIndex> MakeResourcePlanIndex(
    CacheIndexKind kind) {
  if (kind == CacheIndexKind::kCsbTree) {
    return std::make_unique<CsbTreeIndex>();
  }
  return std::make_unique<SortedArrayIndex>();
}

ShardedResourcePlanIndex::ShardedResourcePlanIndex(CacheIndexKind inner,
                                                   size_t num_shards)
    : inner_(inner), shards_(std::max<size_t>(1, num_shards)) {
  for (Shard& shard : shards_) shard.index = MakeResourcePlanIndex(inner);
}

std::unique_lock<std::mutex> ShardedResourcePlanIndex::LockShard(
    const Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Contended: another planner thread holds this stripe. Only now is
    // the clock read, so the uncontended path stays wait-free of timing
    // overhead.
    Stopwatch waited;
    lock.lock();
    shard.contended_acquires.fetch_add(1, std::memory_order_relaxed);
    shard.lock_wait_ns.fetch_add(
        static_cast<int64_t>(waited.ElapsedMicros() * 1e3),
        std::memory_order_relaxed);
  }
  return lock;
}

const ShardedResourcePlanIndex::Shard& ShardedResourcePlanIndex::ShardFor(
    double key) const {
  // +0.0 and -0.0 hash alike, matching their key equality.
  if (key == 0.0) key = 0.0;
  return shards_[std::hash<double>{}(key) % shards_.size()];
}

ShardedResourcePlanIndex::Shard& ShardedResourcePlanIndex::ShardFor(
    double key) {
  return const_cast<Shard&>(
      static_cast<const ShardedResourcePlanIndex*>(this)->ShardFor(key));
}

void ShardedResourcePlanIndex::Insert(const CachedResourcePlan& plan) {
  Shard& shard = ShardFor(plan.key_gb);
  shard.inserts.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock = LockShard(shard);
  shard.index->Insert(plan);
}

std::optional<CachedResourcePlan> ShardedResourcePlanIndex::FindExact(
    double key) const {
  const Shard& shard = ShardFor(key);
  shard.lookups.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock = LockShard(shard);
  return shard.index->FindExact(key);
}

std::vector<CachedResourcePlan> ShardedResourcePlanIndex::FindNeighbors(
    double key, double threshold) const {
  // Hash striping scatters a key range over every shard; gather per
  // shard (each under its own lock) and restore the ascending order.
  std::vector<CachedResourcePlan> out;
  for (const Shard& shard : shards_) {
    shard.lookups.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock = LockShard(shard);
    std::vector<CachedResourcePlan> part =
        shard.index->FindNeighbors(key, threshold);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end(),
            [](const CachedResourcePlan& a, const CachedResourcePlan& b) {
              return a.key_gb < b.key_gb;
            });
  return out;
}

size_t ShardedResourcePlanIndex::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.index->size();
  }
  return total;
}

const char* ShardedResourcePlanIndex::name() const {
  return inner_ == CacheIndexKind::kCsbTree ? "sharded-csb-tree"
                                            : "sharded-sorted-array";
}

std::vector<ShardStats> ShardedResourcePlanIndex::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    ShardStats s;
    s.lookups = shard.lookups.load(std::memory_order_relaxed);
    s.inserts = shard.inserts.load(std::memory_order_relaxed);
    s.contended_acquires =
        shard.contended_acquires.load(std::memory_order_relaxed);
    s.lock_wait_ns = shard.lock_wait_ns.load(std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock = LockShard(shard);
      s.entries = shard.index->size();
    }
    out.push_back(s);
  }
  return out;
}

const char* CacheLookupModeName(CacheLookupMode mode) {
  switch (mode) {
    case CacheLookupMode::kExact:
      return "exact";
    case CacheLookupMode::kNearestNeighbor:
      return "nearest-neighbor";
    case CacheLookupMode::kWeightedAverage:
      return "weighted-average";
  }
  return "?";
}

ResourcePlanCache::ResourcePlanCache(CacheLookupMode mode,
                                     double threshold_gb,
                                     CacheIndexKind index_kind,
                                     size_t shards)
    : mode_(mode),
      threshold_gb_(threshold_gb),
      index_kind_(index_kind),
      shards_(shards) {
  RAQO_CHECK(threshold_gb >= 0.0) << "cache threshold must be non-negative";
}

ResourcePlanIndex* ResourcePlanCache::FindIndex(
    const std::string& model_name) const {
  auto it = per_model_.find(model_name);
  return it == per_model_.end() ? nullptr : it->second.get();
}

ResourcePlanIndex& ResourcePlanCache::IndexFor(
    const std::string& model_name) {
  std::unique_ptr<ResourcePlanIndex>& slot = per_model_[model_name];
  if (slot == nullptr) {
    if (shards_ > 0) {
      slot = std::make_unique<ShardedResourcePlanIndex>(index_kind_, shards_);
    } else {
      slot = MakeResourcePlanIndex(index_kind_);
    }
  }
  return *slot;
}

namespace {

/// Exact mode stores one entry per (smaller, larger) input pair: the
/// index key mixes the bit patterns of both sizes into a 53-bit
/// integer-valued double (exactly representable, totally ordered), so
/// distinct pairs land on distinct keys. An arithmetic fold such as
/// ss + 1e6 * ls would round away small smaller-side differences once
/// the larger side dominates the magnitude, silently overwriting
/// distinct pairs. Residual hash collisions (~n^2 / 2^54) are harmless:
/// lookups verify the true pair on the entry itself.
double ExactStorageKey(double smaller_gb, double larger_gb) {
  if (larger_gb == 0.0) return smaller_gb;
  uint64_t a = 0;
  uint64_t b = 0;
  std::memcpy(&a, &smaller_gb, sizeof(a));
  std::memcpy(&b, &larger_gb, sizeof(b));
  uint64_t h = a * 0x9E3779B97F4A7C15ull;
  h ^= h >> 32;
  h += b;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 29;
  return static_cast<double>(h >> 11);
}

}  // namespace

std::optional<CachedResourcePlan> ResourcePlanCache::Lookup(
    const std::string& model_name, double key_gb,
    std::optional<double> larger_gb) {
  const bool metrics_on = obs::MetricsOn();
  const bool tracing_on = obs::TracingOn();
  if (!metrics_on && !tracing_on) {
    return LookupImpl(model_name, key_gb, larger_gb);
  }

  Stopwatch timer;
  obs::Span span = obs::DefaultTracer().StartSpan("cache.lookup");
  std::optional<CachedResourcePlan> result =
      LookupImpl(model_name, key_gb, larger_gb);
  if (span.recording()) {
    span.SetAttr("model", model_name);
    span.SetAttr("key_gb", key_gb);
    span.SetAttr("hit", static_cast<int64_t>(result.has_value()));
  }
  if (metrics_on) {
    static obs::Counter* hit_count =
        obs::DefaultMetrics().GetCounter("cache.lookup.hit");
    static obs::Counter* miss_count =
        obs::DefaultMetrics().GetCounter("cache.lookup.miss");
    static obs::Histogram* latency =
        obs::DefaultMetrics().GetHistogram("cache.lookup.wall_us");
    (result.has_value() ? hit_count : miss_count)->Add(1);
    latency->Record(timer.ElapsedMicros());
  }
  return result;
}

std::optional<CachedResourcePlan> ResourcePlanCache::LookupImpl(
    const std::string& model_name, double key_gb,
    std::optional<double> larger_gb) {
  std::shared_lock<std::shared_mutex> map_lock(map_mu_);
  const ResourcePlanIndex* index = FindIndex(model_name);
  if (index == nullptr) {
    // No plan was ever recorded for this model: a miss, without taking
    // the exclusive lock to materialize an empty index.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  // Exact mode with a larger-size guard: the entry must have been
  // computed for this very (smaller, larger) pair — a configuration
  // reused across pairs would depend on which join populated the cache
  // first, which is acceptable for the similarity modes but fatal for
  // determinism under concurrent sharing. The pair is re-verified on the
  // entry, so folded-key aliasing can never produce a false hit.
  if (mode_ == CacheLookupMode::kExact && larger_gb.has_value()) {
    std::optional<CachedResourcePlan> exact =
        index->FindExact(ExactStorageKey(key_gb, *larger_gb));
    if (exact && exact->smaller_gb == key_gb &&
        exact->larger_gb == *larger_gb) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      exact->key_gb = key_gb;  // restore the caller-facing key
      return exact;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  // All modes try an exact match first.
  if (std::optional<CachedResourcePlan> exact = index->FindExact(key_gb)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return exact;
  }
  if (mode_ != CacheLookupMode::kExact && threshold_gb_ > 0.0) {
    const std::vector<CachedResourcePlan> neighbors =
        index->FindNeighbors(key_gb, threshold_gb_);
    if (!neighbors.empty()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (mode_ == CacheLookupMode::kNearestNeighbor) {
        const CachedResourcePlan* best = &neighbors[0];
        for (const CachedResourcePlan& n : neighbors) {
          if (std::fabs(n.key_gb - key_gb) <
              std::fabs(best->key_gb - key_gb)) {
            best = &n;
          }
        }
        return *best;
      }
      // Weighted average: inverse-distance weighting of the neighboring
      // resource configurations and costs.
      double weight_sum = 0.0;
      double cs = 0.0;
      double nc = 0.0;
      double cost = 0.0;
      for (const CachedResourcePlan& n : neighbors) {
        const double w = 1.0 / (std::fabs(n.key_gb - key_gb) + 1e-9);
        weight_sum += w;
        cs += w * n.config.container_size_gb();
        nc += w * n.config.num_containers();
        cost += w * n.cost;
      }
      CachedResourcePlan blended;
      blended.key_gb = key_gb;
      blended.config = resource::ResourceConfig(cs / weight_sum,
                                                nc / weight_sum);
      blended.cost = cost / weight_sum;
      return blended;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void ResourcePlanCache::Insert(const std::string& model_name,
                               const CachedResourcePlan& plan) {
  CachedResourcePlan entry = plan;
  entry.smaller_gb = plan.key_gb;
  if (mode_ == CacheLookupMode::kExact) {
    // One entry per (smaller, larger) pair; with no larger size recorded
    // the storage key degenerates to the plain data characteristic, so
    // guard-less callers see the paper's original exact-match layout.
    entry.key_gb = ExactStorageKey(plan.key_gb, plan.larger_gb);
  }
  {
    std::shared_lock<std::shared_mutex> map_lock(map_mu_);
    if (ResourcePlanIndex* index = FindIndex(model_name)) {
      index->Insert(entry);
      return;
    }
  }
  // First insert for this model: create the index under the exclusive
  // lock (IndexFor re-checks, so two racing creators agree).
  std::unique_lock<std::shared_mutex> map_lock(map_mu_);
  IndexFor(model_name).Insert(entry);
}

void ResourcePlanCache::Clear() {
  std::unique_lock<std::shared_mutex> map_lock(map_mu_);
  per_model_.clear();
}

size_t ResourcePlanCache::size() const {
  std::shared_lock<std::shared_mutex> map_lock(map_mu_);
  size_t total = 0;
  for (const auto& [name, index] : per_model_) total += index->size();
  return total;
}

std::vector<ShardStats> ResourcePlanCache::shard_stats() const {
  if (shards_ == 0) return {};
  std::vector<ShardStats> out;
  std::shared_lock<std::shared_mutex> map_lock(map_mu_);
  for (const auto& [name, index] : per_model_) {
    // shards_ > 0 means every per-model index is sharded.
    const auto& sharded =
        static_cast<const ShardedResourcePlanIndex&>(*index);
    std::vector<ShardStats> per = sharded.shard_stats();
    if (out.size() < per.size()) out.resize(per.size());
    for (size_t i = 0; i < per.size(); ++i) {
      out[i].entries += per[i].entries;
      out[i].lookups += per[i].lookups;
      out[i].inserts += per[i].inserts;
      out[i].contended_acquires += per[i].contended_acquires;
      out[i].lock_wait_ns += per[i].lock_wait_ns;
    }
  }
  return out;
}

}  // namespace raqo::core
