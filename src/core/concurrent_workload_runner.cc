#include "core/concurrent_workload_runner.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace raqo::core {

ConcurrentWorkloadRunner::ConcurrentWorkloadRunner(
    const catalog::Catalog* catalog, cost::JoinCostModels models,
    resource::ClusterConditions cluster, resource::PricingModel pricing,
    RaqoPlannerOptions planner_options,
    ConcurrentRunnerOptions runner_options)
    : catalog_(catalog),
      models_(std::move(models)),
      cluster_(cluster),
      pricing_(pricing),
      planner_options_(planner_options),
      options_(runner_options) {
  RAQO_CHECK(catalog != nullptr);
  if (options_.num_threads < 1) options_.num_threads = 1;
  if (options_.share_cache && planner_options_.evaluator.use_cache) {
    shared_cache_ = std::make_shared<ResourcePlanCache>(
        planner_options_.evaluator.cache_mode,
        planner_options_.evaluator.cache_threshold_gb,
        planner_options_.evaluator.cache_index,
        std::max<size_t>(1, options_.cache_shards));
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads - 1);
  }
  // One search pool for all planners: without it, every evaluator with
  // the parallel brute-force search would spawn a private pool —
  // num_threads * parallel_search_threads threads for grids that only
  // ever need parallel_search_threads of them.
  if (planner_options_.evaluator.search ==
          ResourceSearch::kParallelBruteForce &&
      planner_options_.evaluator.search_pool == nullptr) {
    search_pool_ = std::make_unique<ThreadPool>(
        std::max(1, planner_options_.evaluator.parallel_search_threads));
    planner_options_.evaluator.search_pool = search_pool_.get();
  }
  planners_.reserve(static_cast<size_t>(options_.num_threads));
  for (int w = 0; w < options_.num_threads; ++w) {
    planners_.push_back(std::make_unique<RaqoPlanner>(
        catalog_, models_, cluster_, pricing_, planner_options_));
    if (shared_cache_ != nullptr) {
      planners_.back()->evaluator().ShareCache(shared_cache_);
    }
  }
}

Result<WorkloadReport> ConcurrentWorkloadRunner::Run(
    const std::vector<WorkloadQuery>& workload) {
  if (workload.empty()) {
    return Status::InvalidArgument("workload is empty");
  }
  Stopwatch watch;
  const CacheStats shared_before =
      shared_cache_ != nullptr ? shared_cache_->stats() : CacheStats{};

  // The persistent per-worker planners (shared cache already attached)
  // fan out over the persistent pool; small workloads use a prefix of
  // the workers rather than waking idle ones.
  const int num_workers =
      static_cast<int>(std::min<size_t>(
          static_cast<size_t>(options_.num_threads), workload.size()));

  // Dynamic work stealing over the query list: a single atomic cursor
  // hands out submission indices, and every result lands in its query's
  // slot, so the merged report order is the submission order no matter
  // which worker planned what.
  std::vector<std::optional<QueryRunReport>> slots(workload.size());
  std::vector<Status> errors(workload.size());
  std::atomic<size_t> cursor{0};
  auto worker_loop = [&](RaqoPlanner* planner, int worker_index) {
    while (true) {
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= workload.size()) return;
      const WorkloadQuery& query = workload[i];
      // Queue wait: how long the query sat in the submission list before
      // a worker claimed it. Span ids come from one process-wide atomic
      // counter, so they are stable identifiers even though the claiming
      // worker and the interleaving vary run to run.
      const double queue_wait_us =
          obs::MetricsOn() || obs::TracingOn() ? watch.ElapsedMicros() : 0.0;
      obs::Span span;
      if (obs::TracingOn()) {
        span = obs::DefaultTracer().StartSpan("runner.query");
        span.SetAttr("query", query.label);
        span.SetAttr("index", static_cast<int64_t>(i));
        span.SetAttr("worker", static_cast<int64_t>(worker_index));
        span.SetAttr("queue_wait_us", queue_wait_us);
      }
      if (obs::MetricsOn()) {
        static obs::Histogram* queue_wait = obs::DefaultMetrics().GetHistogram(
            "runner.queue_wait_us");
        queue_wait->Record(queue_wait_us);
      }
      Result<JointPlan> plan = planner->Plan(query.tables);
      if (obs::MetricsOn()) {
        static obs::Counter* planned =
            obs::DefaultMetrics().GetCounter("runner.queries");
        static obs::Counter* failed =
            obs::DefaultMetrics().GetCounter("runner.errors");
        planned->Add(1);
        if (!plan.ok()) failed->Add(1);
      }
      if (!plan.ok()) {
        if (span.recording()) span.SetAttr("error", plan.status().message());
        errors[i] = plan.status();
        continue;
      }
      if (span.recording()) span.SetAttr("cost_seconds", plan->cost.seconds);
      span.End();
      QueryRunReport entry;
      entry.label = query.label;
      entry.cost = plan->cost;
      DescribePlanInReport(*plan, &entry);
      entry.wall_ms = plan->stats.wall_ms;
      entry.resource_configs_explored =
          plan->stats.resource_configs_explored;
      entry.cache_hits = plan->stats.cache_hits;
      entry.cache_misses = plan->stats.cache_misses;
      slots[i] = std::move(entry);
    }
  };

  if (num_workers == 1) {
    worker_loop(planners_[0].get(), 0);
  } else {
    // Workers 1..N-1 run on the persistent pool; worker 0 runs here so
    // the calling thread contributes instead of idling.
    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<size_t>(num_workers) - 1);
    for (int w = 1; w < num_workers; ++w) {
      RaqoPlanner* planner = planners_[static_cast<size_t>(w)].get();
      futures.push_back(
          pool_->Submit([&, planner, w] { worker_loop(planner, w); }));
    }
    worker_loop(planners_[0].get(), 0);
    for (std::future<void>& f : futures) f.get();
  }

  // Deterministic error reporting: the failure at the lowest submission
  // index wins, independent of scheduling.
  for (size_t i = 0; i < workload.size(); ++i) {
    if (!errors[i].ok()) return errors[i];
  }

  WorkloadReport report;
  report.queries.reserve(workload.size());
  for (std::optional<QueryRunReport>& slot : slots) {
    RAQO_CHECK(slot.has_value());
    report.queries.push_back(std::move(*slot));
  }
  AccumulateReportTotals(&report);
  if (shared_cache_ != nullptr) {
    const CacheStats after = shared_cache_->stats();
    report.shared_cache.hits = after.hits - shared_before.hits;
    report.shared_cache.misses = after.misses - shared_before.misses;
  }
  report.wall_clock_ms = watch.ElapsedMillis();
  return report;
}

CacheStats ConcurrentWorkloadRunner::shared_cache_stats() const {
  return shared_cache_ != nullptr ? shared_cache_->stats() : CacheStats{};
}

size_t ConcurrentWorkloadRunner::shared_cache_size() const {
  return shared_cache_ != nullptr ? shared_cache_->size() : 0;
}

std::vector<ShardStats> ConcurrentWorkloadRunner::shared_cache_shard_stats()
    const {
  return shared_cache_ != nullptr ? shared_cache_->shard_stats()
                                  : std::vector<ShardStats>{};
}

}  // namespace raqo::core
