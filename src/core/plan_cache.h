#ifndef RAQO_CORE_PLAN_CACHE_H_
#define RAQO_CORE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/csb_tree.h"
#include "resource/resource_config.h"

namespace raqo::core {

/// A cached resource plan: the best configuration found for some data
/// characteristic (the smaller input size) plus its predicted cost.
struct CachedResourcePlan {
  double key_gb = 0.0;
  resource::ResourceConfig config;
  double cost = 0.0;
  /// Larger-input size of the join the plan was computed for. The
  /// resource optimum depends on both inputs, so exact-mode lookups can
  /// pass their larger size as a guard: a hit then provably returns what
  /// recomputation would, which is what makes concurrent shared-cache
  /// planning deterministic (see docs/CONCURRENCY.md).
  double larger_gb = 0.0;
  /// True smaller-input size. Managed by ResourcePlanCache: in exact
  /// mode entries are stored under a key folding both sizes together
  /// (one entry per pair instead of overwrite-by-smaller-size), and this
  /// field keeps the original data characteristic for the pair guard.
  double smaller_gb = 0.0;
};

/// Index over data-characteristic keys (Section VI-B.3). Two layouts are
/// provided: the paper's default "sorted array of keys, with automatic
/// resizing, binary search for lookup", and the CSB+-Tree it suggests for
/// larger workloads.
class ResourcePlanIndex {
 public:
  virtual ~ResourcePlanIndex() = default;

  /// Inserts or overwrites the entry at `plan.key_gb`. Returns true
  /// when a new key was inserted, false on overwrite — callers keeping
  /// an entry count (the cache's obs gauges) depend on the distinction.
  virtual bool Insert(const CachedResourcePlan& plan) = 0;

  /// Exact-key lookup.
  virtual std::optional<CachedResourcePlan> FindExact(double key) const = 0;

  /// All entries with |entry.key - key| <= threshold, ascending by key.
  virtual std::vector<CachedResourcePlan> FindNeighbors(
      double key, double threshold) const = 0;

  /// Visits every stored entry in ascending key order (the persistence
  /// layer and cache_dump frames iterate through this).
  virtual void ForEach(
      const std::function<void(const CachedResourcePlan&)>& fn) const = 0;

  virtual size_t size() const = 0;
  virtual const char* name() const = 0;
};

/// Sorted dynamic array with binary search (the prototype layout in the
/// paper).
class SortedArrayIndex : public ResourcePlanIndex {
 public:
  bool Insert(const CachedResourcePlan& plan) override;
  std::optional<CachedResourcePlan> FindExact(double key) const override;
  std::vector<CachedResourcePlan> FindNeighbors(
      double key, double threshold) const override;
  void ForEach(const std::function<void(const CachedResourcePlan&)>& fn)
      const override;
  size_t size() const override { return entries_.size(); }
  const char* name() const override { return "sorted-array"; }

 private:
  std::vector<CachedResourcePlan> entries_;  // ascending by key_gb
};

/// CSB+-Tree-backed index ("We could also layout the array as a
/// CSB+-Tree for larger workloads").
class CsbTreeIndex : public ResourcePlanIndex {
 public:
  bool Insert(const CachedResourcePlan& plan) override;
  std::optional<CachedResourcePlan> FindExact(double key) const override;
  std::vector<CachedResourcePlan> FindNeighbors(
      double key, double threshold) const override;
  void ForEach(const std::function<void(const CachedResourcePlan&)>& fn)
      const override;
  size_t size() const override { return payloads_.size(); }
  const char* name() const override { return "csb-tree"; }

 private:
  CsbTree tree_;
  /// Payload store; the tree maps key -> index into this vector.
  std::vector<CachedResourcePlan> payloads_;
};

/// Index layout selector.
enum class CacheIndexKind {
  kSortedArray,
  kCsbTree,
};

/// A thread-safe index that stripes keys across `num_shards` inner
/// indexes (SortedArrayIndex or CsbTreeIndex per `inner`), each behind
/// its own mutex, so concurrent planners contend on a shard rather than
/// on the whole index. Keys are distributed by hash, so FindNeighbors
/// gathers from every shard and merges the results back into ascending
/// key order.
/// Per-shard activity counters (a point-in-time snapshot when read off a
/// live concurrent index). `lock_wait_ns` accumulates only time spent
/// blocked behind another thread — uncontended acquisitions go through a
/// try_lock fast path that never reads the clock.
struct ShardStats {
  size_t entries = 0;
  int64_t lookups = 0;
  int64_t inserts = 0;
  int64_t contended_acquires = 0;
  int64_t lock_wait_ns = 0;
};

class ShardedResourcePlanIndex : public ResourcePlanIndex {
 public:
  ShardedResourcePlanIndex(CacheIndexKind inner, size_t num_shards);

  bool Insert(const CachedResourcePlan& plan) override;

  /// Inserts every plan, grouping by shard so each stripe lock is taken
  /// at most once for the whole batch instead of once per entry — the
  /// write-behind planners flush through this to keep shard-lock traffic
  /// off the planning hot path. Returns the number of newly inserted
  /// keys (overwrites excluded). Within a shard, insertion order follows
  /// batch order, so duplicate keys resolve to the last occurrence just
  /// like repeated Insert calls.
  size_t InsertBatch(const std::vector<CachedResourcePlan>& plans);
  std::optional<CachedResourcePlan> FindExact(double key) const override;
  std::vector<CachedResourcePlan> FindNeighbors(
      double key, double threshold) const override;
  void ForEach(const std::function<void(const CachedResourcePlan&)>& fn)
      const override;
  size_t size() const override;
  const char* name() const override;

  size_t num_shards() const { return shards_.size(); }

  /// One entry per shard, in shard order. Exposes the skew a workload's
  /// key distribution induces over the lock stripes.
  std::vector<ShardStats> shard_stats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unique_ptr<ResourcePlanIndex> index;
    mutable std::atomic<int64_t> lookups{0};
    mutable std::atomic<int64_t> inserts{0};
    mutable std::atomic<int64_t> contended_acquires{0};
    mutable std::atomic<int64_t> lock_wait_ns{0};
  };

  /// Acquires `shard.mu`, charging blocked time to the shard's wait
  /// counters. try_lock first so the common uncontended path costs no
  /// clock read.
  static std::unique_lock<std::mutex> LockShard(const Shard& shard);

  size_t ShardIndexFor(double key) const;
  const Shard& ShardFor(double key) const;
  Shard& ShardFor(double key);

  CacheIndexKind inner_;
  std::vector<Shard> shards_;
};

/// Builds a bare (unsharded) index of the given layout.
std::unique_ptr<ResourcePlanIndex> MakeResourcePlanIndex(CacheIndexKind kind);

/// Cache lookup behaviours (Section VI-B.3).
enum class CacheLookupMode {
  /// Hit only on an exactly matching data characteristic.
  kExact,
  /// Hit on the nearest key within the threshold.
  kNearestNeighbor,
  /// Hit on the distance-weighted average of all neighbors within the
  /// threshold.
  kWeightedAverage,
};

const char* CacheLookupModeName(CacheLookupMode mode);

/// Hit/miss counters (a point-in-time snapshot when read off a live
/// concurrent cache).
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;

  int64_t lookups() const { return hits + misses; }
  /// Hits as a fraction of lookups; 0 when no lookup happened yet.
  double hit_rate() const {
    const int64_t total = lookups();
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// One logical cache entry as seen by callers of Insert: the model it
/// belongs to plus the plan with its original (pre-key-folding) data
/// characteristic. DumpEntries returns these; re-Inserting them into an
/// identically configured cache reproduces the same stored state
/// bit-for-bit, which is what the persistence layer (src/persist/) and
/// the cache_dump wire frames rely on.
struct CacheEntryRecord {
  std::string model;
  CachedResourcePlan plan;
};

/// Observer of cache mutations. Invoked *after* the cache has released
/// every internal lock, so an implementation may call back into the
/// cache (DumpEntries during compaction) without lock-order concerns.
/// Installed via an atomic pointer like the fault injectors in
/// common/net.h: one relaxed load per Insert when absent.
class CacheEventListener {
 public:
  virtual ~CacheEventListener() = default;
  /// One plan was recorded under `model`. `plan.key_gb` is the caller's
  /// original key (before exact-mode key folding).
  virtual void OnInsert(const std::string& model,
                        const CachedResourcePlan& plan) = 0;
};

/// The resource-plan cache: per cost model (SMJ, BHJ, ...) an index of
/// data-characteristic keys pointing at the best resource configuration
/// found for them. "A resource configuration computed for one join
/// operator in a query tree could be applied to another join operator in
/// the same tree in case they have similar data characteristics", and
/// across queries in a workload when the cache is kept warm.
///
/// With `shards > 0` the cache is safe for concurrent Lookup/Insert from
/// many planner threads: each per-model index is a
/// ShardedResourcePlanIndex with that many lock stripes, the per-model
/// map is guarded by a reader/writer lock, and the hit/miss counters are
/// atomic. With the default `shards == 0` the layout is the paper's
/// single-threaded one.
class ResourcePlanCache {
 public:
  ResourcePlanCache(CacheLookupMode mode, double threshold_gb,
                    CacheIndexKind index_kind = CacheIndexKind::kSortedArray,
                    size_t shards = 0);

  /// Looks up a plan for (model, smaller input size). Updates hit/miss
  /// statistics. In kExact mode a caller may pass `larger_gb` to demand
  /// that the entry's full data characteristic matches (an entry for the
  /// same smaller size but a different larger size counts as a miss);
  /// the similarity modes ignore the guard — they approximate by design.
  ///
  /// When the observability layer is on, each call records a
  /// `cache.lookup` span plus hit/miss counters and a latency histogram
  /// under the same prefix (obs/metrics.h); with both metrics and
  /// tracing off the instrumentation is a pair of relaxed loads.
  std::optional<CachedResourcePlan> Lookup(
      const std::string& model_name, double key_gb,
      std::optional<double> larger_gb = std::nullopt);

  /// Records the plan computed for (model, key).
  void Insert(const std::string& model_name, const CachedResourcePlan& plan);

  /// Records a whole batch of entries, grouped by model (and, on a
  /// sharded cache, by stripe) so locks are taken per group instead of
  /// per entry. Semantically identical to calling Insert for each entry
  /// in order: exact-mode key folding, entry accounting, and the
  /// mutation listener (fired per entry, outside all locks, in batch
  /// order) all behave the same. This is the flush path of the
  /// write-behind insert buffer planner workers keep per thread.
  void InsertBatch(const std::vector<CacheEntryRecord>& entries);

  /// Drops every entry (the paper clears the cache between queries unless
  /// evaluating across-query caching).
  void Clear();

  CacheStats stats() const {
    return CacheStats{hits_.load(std::memory_order_relaxed),
                      misses_.load(std::memory_order_relaxed)};
  }

  /// Zeroes the hit/miss counters and returns their pre-reset values.
  /// Each counter is drained with a single atomic exchange, so no
  /// concurrent increment can slip into the window between reading a
  /// counter and zeroing it and be lost; across the two counters the
  /// snapshot is per-counter consistent, the strongest guarantee
  /// available without serializing every Lookup.
  CacheStats ResetStats() {
    return CacheStats{hits_.exchange(0, std::memory_order_relaxed),
                      misses_.exchange(0, std::memory_order_relaxed)};
  }

  /// Aggregated per-shard stats: entry `i` sums shard `i` of every
  /// per-model sharded index. Empty when the cache is unsharded.
  std::vector<ShardStats> shard_stats() const;

  CacheLookupMode mode() const { return mode_; }
  double threshold_gb() const { return threshold_gb_; }
  size_t shards() const { return shards_; }

  /// Total entries across all models.
  size_t size() const;

  /// Cheap O(1) entry count maintained on Insert/Clear (size() walks
  /// every index). Mirrors the `cache.entries` gauge.
  int64_t entry_count() const {
    return entry_count_.load(std::memory_order_relaxed);
  }
  /// Approximate resident bytes of the cached entries (struct payload
  /// only, not index overhead). Mirrors the `cache.bytes` gauge.
  int64_t approx_bytes() const {
    return approx_bytes_.load(std::memory_order_relaxed);
  }

  /// Installs (nullptr clears) the mutation observer. The caller must
  /// clear it before destroying the listener; the cache never deletes
  /// it. The listener fires outside all cache locks.
  void SetEventListener(CacheEventListener* listener) {
    listener_.store(listener, std::memory_order_release);
  }

  /// Snapshot of every logical entry, deterministically ordered by
  /// (model, smaller_gb, larger_gb). Entries carry the caller-visible
  /// key (key_gb == smaller_gb), so replaying them through Insert on an
  /// identically configured cache rebuilds identical stored state.
  std::vector<CacheEntryRecord> DumpEntries() const;

 private:
  /// The uninstrumented lookup; Lookup() wraps it with the observability
  /// layer so the hot path stays branch-light when everything is off.
  std::optional<CachedResourcePlan> LookupImpl(
      const std::string& model_name, double key_gb,
      std::optional<double> larger_gb);

  /// Returns the index for `model_name`, creating it if absent. The
  /// caller must hold `map_mu_` (shared suffices once the index exists;
  /// creation upgrades to exclusive internally via the two-phase pattern
  /// in Lookup/Insert).
  ResourcePlanIndex* FindIndex(const std::string& model_name) const;
  ResourcePlanIndex& IndexFor(const std::string& model_name);

  CacheLookupMode mode_;
  double threshold_gb_;
  CacheIndexKind index_kind_;
  size_t shards_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> entry_count_{0};
  std::atomic<int64_t> approx_bytes_{0};
  std::atomic<CacheEventListener*> listener_{nullptr};
  /// Guards `per_model_` (the map itself; sharded indexes carry their own
  /// stripe locks, unsharded indexes rely on this lock being held in
  /// shared mode only by single-threaded callers).
  mutable std::shared_mutex map_mu_;
  std::map<std::string, std::unique_ptr<ResourcePlanIndex>> per_model_;
};

}  // namespace raqo::core

#endif  // RAQO_CORE_PLAN_CACHE_H_
