#ifndef RAQO_CORE_PLAN_CACHE_H_
#define RAQO_CORE_PLAN_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/csb_tree.h"
#include "resource/resource_config.h"

namespace raqo::core {

/// A cached resource plan: the best configuration found for some data
/// characteristic (the smaller input size) plus its predicted cost.
struct CachedResourcePlan {
  double key_gb = 0.0;
  resource::ResourceConfig config;
  double cost = 0.0;
};

/// Index over data-characteristic keys (Section VI-B.3). Two layouts are
/// provided: the paper's default "sorted array of keys, with automatic
/// resizing, binary search for lookup", and the CSB+-Tree it suggests for
/// larger workloads.
class ResourcePlanIndex {
 public:
  virtual ~ResourcePlanIndex() = default;

  /// Inserts or overwrites the entry at `plan.key_gb`.
  virtual void Insert(const CachedResourcePlan& plan) = 0;

  /// Exact-key lookup.
  virtual std::optional<CachedResourcePlan> FindExact(double key) const = 0;

  /// All entries with |entry.key - key| <= threshold, ascending by key.
  virtual std::vector<CachedResourcePlan> FindNeighbors(
      double key, double threshold) const = 0;

  virtual size_t size() const = 0;
  virtual const char* name() const = 0;
};

/// Sorted dynamic array with binary search (the prototype layout in the
/// paper).
class SortedArrayIndex : public ResourcePlanIndex {
 public:
  void Insert(const CachedResourcePlan& plan) override;
  std::optional<CachedResourcePlan> FindExact(double key) const override;
  std::vector<CachedResourcePlan> FindNeighbors(
      double key, double threshold) const override;
  size_t size() const override { return entries_.size(); }
  const char* name() const override { return "sorted-array"; }

 private:
  std::vector<CachedResourcePlan> entries_;  // ascending by key_gb
};

/// CSB+-Tree-backed index ("We could also layout the array as a
/// CSB+-Tree for larger workloads").
class CsbTreeIndex : public ResourcePlanIndex {
 public:
  void Insert(const CachedResourcePlan& plan) override;
  std::optional<CachedResourcePlan> FindExact(double key) const override;
  std::vector<CachedResourcePlan> FindNeighbors(
      double key, double threshold) const override;
  size_t size() const override { return payloads_.size(); }
  const char* name() const override { return "csb-tree"; }

 private:
  CsbTree tree_;
  /// Payload store; the tree maps key -> index into this vector.
  std::vector<CachedResourcePlan> payloads_;
};

/// Cache lookup behaviours (Section VI-B.3).
enum class CacheLookupMode {
  /// Hit only on an exactly matching data characteristic.
  kExact,
  /// Hit on the nearest key within the threshold.
  kNearestNeighbor,
  /// Hit on the distance-weighted average of all neighbors within the
  /// threshold.
  kWeightedAverage,
};

const char* CacheLookupModeName(CacheLookupMode mode);

/// Index layout selector.
enum class CacheIndexKind {
  kSortedArray,
  kCsbTree,
};

/// Hit/miss counters.
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
};

/// The resource-plan cache: per cost model (SMJ, BHJ, ...) an index of
/// data-characteristic keys pointing at the best resource configuration
/// found for them. "A resource configuration computed for one join
/// operator in a query tree could be applied to another join operator in
/// the same tree in case they have similar data characteristics", and
/// across queries in a workload when the cache is kept warm.
class ResourcePlanCache {
 public:
  ResourcePlanCache(CacheLookupMode mode, double threshold_gb,
                    CacheIndexKind index_kind = CacheIndexKind::kSortedArray);

  /// Looks up a plan for (model, smaller input size). Updates hit/miss
  /// statistics.
  std::optional<CachedResourcePlan> Lookup(const std::string& model_name,
                                           double key_gb);

  /// Records the plan computed for (model, key).
  void Insert(const std::string& model_name, const CachedResourcePlan& plan);

  /// Drops every entry (the paper clears the cache between queries unless
  /// evaluating across-query caching).
  void Clear();

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

  CacheLookupMode mode() const { return mode_; }
  double threshold_gb() const { return threshold_gb_; }

  /// Total entries across all models.
  size_t size() const;

 private:
  ResourcePlanIndex& IndexFor(const std::string& model_name);

  CacheLookupMode mode_;
  double threshold_gb_;
  CacheIndexKind index_kind_;
  CacheStats stats_;
  std::map<std::string, std::unique_ptr<ResourcePlanIndex>> per_model_;
};

}  // namespace raqo::core

#endif  // RAQO_CORE_PLAN_CACHE_H_
