#include "core/adaptive.h"

#include "common/logging.h"

namespace raqo::core {

AdaptiveRaqo::AdaptiveRaqo(RaqoPlanner* planner, AdaptiveOptions options)
    : planner_(planner), options_(options) {
  RAQO_CHECK(planner != nullptr);
  RAQO_CHECK(options_.reoptimize_threshold >= 1.0)
      << "a threshold below 1 would re-optimize even when strictly worse";
}

Result<const JointPlan*> AdaptiveRaqo::Submit(
    const std::vector<catalog::TableId>& tables) {
  RAQO_ASSIGN_OR_RETURN(JointPlan plan, planner_->Plan(tables));
  tables_ = tables;
  current_ = std::move(plan);
  has_plan_ = true;
  return &current_;
}

Result<AdaptiveRaqo::ChangeEvent> AdaptiveRaqo::OnClusterChange(
    const resource::ClusterConditions& conditions) {
  if (!has_plan_) {
    return Status::FailedPrecondition(
        "no query submitted; call Submit first");
  }
  planner_->UpdateClusterConditions(conditions);

  ChangeEvent event;

  // Option A: keep the shape, refresh only its resources.
  Result<JointPlan> kept = planner_->PlanResourcesForPlan(*current_.plan);
  if (!kept.ok()) {
    if (!kept.status().IsResourceExhausted() &&
        !kept.status().IsFailedPrecondition()) {
      return kept.status();
    }
    event.old_plan_infeasible = true;
  } else {
    event.kept_cost_seconds = kept->cost.seconds;
  }

  // Option B: re-optimize from scratch.
  RAQO_ASSIGN_OR_RETURN(JointPlan fresh, planner_->Plan(tables_));
  event.replanned_cost_seconds = fresh.cost.seconds;

  if (event.old_plan_infeasible ||
      event.kept_cost_seconds >
          fresh.cost.seconds * options_.reoptimize_threshold) {
    current_ = std::move(fresh);
    event.reoptimized = true;
  } else {
    current_ = *std::move(kept);
  }
  return event;
}

const JointPlan& AdaptiveRaqo::current() const {
  RAQO_CHECK(has_plan_) << "no active plan";
  return current_;
}

}  // namespace raqo::core
