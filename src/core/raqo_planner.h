#ifndef RAQO_CORE_RAQO_PLANNER_H_
#define RAQO_CORE_RAQO_PLANNER_H_

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "common/arena.h"
#include "common/result.h"
#include "core/raqo_cost_evaluator.h"
#include "cost/cost_model.h"
#include "optimizer/fast_randomized.h"
#include "optimizer/planner_result.h"
#include "optimizer/selinger.h"
#include "resource/cluster_conditions.h"
#include "resource/pricing.h"

namespace raqo::core {

/// Query-planning algorithm to combine with resource planning; the paper
/// validates RAQO with both (Section VI-C).
enum class PlannerAlgorithm {
  kSelinger,
  kFastRandomized,
};

const char* PlannerAlgorithmName(PlannerAlgorithm algorithm);

/// Top-level configuration of the RAQO planner.
struct RaqoPlannerOptions {
  PlannerAlgorithm algorithm = PlannerAlgorithm::kSelinger;
  RaqoEvaluatorOptions evaluator;
  optimizer::SelingerOptions selinger;
  optimizer::FastRandomizedOptions randomized;
  /// The paper clears the resource plan cache before each query run
  /// unless evaluating across-query caching (Figure 15(b)).
  bool clear_cache_between_queries = true;
  /// Resource-objective weights swept by PlanFrontier: resources planned
  /// purely for time sit at one end of the frontier, purely for money at
  /// the other. One randomized planning pass runs per weight and the
  /// Pareto archives are merged.
  std::vector<double> frontier_weights = {1.0, 0.75, 0.5, 0.25, 0.0};
};

/// A joint query and resource plan (Figure 8(b)): the operator DAG for
/// the runtime plus, on every join node, the resources to request from
/// the resource manager.
struct JointPlan {
  std::unique_ptr<plan::PlanNode> plan;
  cost::CostVector cost;
  optimizer::PlanningStats stats;
};

/// The RAQO optimizer facade: one object owning the cost models, the
/// cluster conditions, the resource planner (+cache) and a query planner,
/// exposing the use cases of Section IV:
///   - Plan():                 best joint (p, r)
///   - PlanForResources():     r => p   (plan under a fixed budget)
///   - PlanResourcesForPlan(): p => (r, c) (resources + cost for a plan)
///   - PlanForMoneyBudget():   c => (p, r) (best plan under a price cap)
class RaqoPlanner {
 public:
  /// `catalog` must outlive the planner.
  RaqoPlanner(const catalog::Catalog* catalog, cost::JoinCostModels models,
              resource::ClusterConditions cluster,
              resource::PricingModel pricing = resource::PricingModel(),
              RaqoPlannerOptions options = RaqoPlannerOptions());

  /// Best joint query/resource plan for the query (use case "optimize
  /// for performance with abundant resources").
  Result<JointPlan> Plan(const std::vector<catalog::TableId>& tables);

  /// Best query plan for a fixed resource configuration (use case
  /// "constrained resources / per-tenant quota": r => p). No resource
  /// planning happens; this is also the paper's "QO" baseline.
  Result<JointPlan> PlanForResources(
      const std::vector<catalog::TableId>& tables,
      const resource::ResourceConfig& resources);

  /// Plans resources for an existing physical plan without changing its
  /// shape or operators (use case "user is satisfied with the plan,
  /// lower my bill": p => (r, c)).
  Result<JointPlan> PlanResourcesForPlan(const plan::PlanNode& plan);

  /// Best plan whose monetary cost stays within `max_dollars` (use case
  /// c => (p, r)). Runs the multi-objective planner and picks the
  /// fastest frontier plan under the cap; NotFound when even the
  /// cheapest plan exceeds it.
  Result<JointPlan> PlanForMoneyBudget(
      const std::vector<catalog::TableId>& tables, double max_dollars);

  /// Full (time, money) frontier from the multi-objective planner.
  Result<optimizer::MultiObjectiveResult> PlanFrontier(
      const std::vector<catalog::TableId>& tables);

  /// Adaptive RAQO: refresh the cluster conditions from the resource
  /// manager; subsequent planning sees the new grid.
  void UpdateClusterConditions(resource::ClusterConditions cluster);

  /// Cache control (meaningful when the evaluator caching is enabled).
  void ClearCache() { evaluator_.ClearCache(); }
  CacheStats cache_stats() const { return evaluator_.cache_stats(); }

  RaqoCostEvaluator& evaluator() { return evaluator_; }
  const RaqoPlannerOptions& options() const { return options_; }

 private:
  Result<JointPlan> RunPlanner(const std::vector<catalog::TableId>& tables,
                               optimizer::PlanCostEvaluator& evaluator);

  const catalog::Catalog* catalog_;
  cost::JoinCostModels models_;
  resource::PricingModel pricing_;
  RaqoPlannerOptions options_;
  RaqoCostEvaluator evaluator_;
  /// Planner-owned scratch arena, reset at the start of every planning
  /// run and lent to the DP enumerators (unless the caller injected an
  /// arena through the Selinger options). Once its block has grown to
  /// the workload's largest memo, per-query planning stops touching the
  /// global allocator for enumeration state entirely.
  Arena arena_;
};

}  // namespace raqo::core

#endif  // RAQO_CORE_RAQO_PLANNER_H_
