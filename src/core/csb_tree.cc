#include "core/csb_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"

namespace raqo::core {

namespace {

/// Index of the child covering `key` in an internal node with `count`
/// separators: the number of separators <= key (separator semantics:
/// a separator is the smallest key of its right subtree).
int RouteChild(const double* keys, int count, double key) {
  int lo = 0;
  int hi = count;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (key < keys[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

CsbTree::CsbTree() = default;

int32_t CsbTree::AllocateGroup(int n) {
  const auto base = static_cast<int32_t>(pool_.size());
  pool_.resize(pool_.size() + static_cast<size_t>(n));
  return base;
}

bool CsbTree::Insert(double key, int64_t value) {
  RAQO_CHECK(!std::isnan(key)) << "CsbTree cannot index NaN keys";
  if (root_ < 0) {
    root_ = AllocateGroup(1);
    Node& root = pool_[static_cast<size_t>(root_)];
    root.is_leaf = 1;
    root.count = 1;
    root.keys[0] = key;
    root.values[0] = value;
    size_ = 1;
    height_ = 1;
    return true;
  }

  // Recursive insert; a split at any level bubbles a (separator, right
  // node) pair up to the caller, which re-allocates its child group.
  struct SplitInfo {
    double separator;
    Node right;
  };

  bool inserted = false;
  std::function<std::optional<SplitInfo>(int32_t)> insert_rec =
      [&](int32_t idx) -> std::optional<SplitInfo> {
    // Work on a copy of the header fields; pool_ may be re-allocated by
    // child group allocations below, so always re-index via pool_[idx].
    if (pool_[static_cast<size_t>(idx)].is_leaf) {
      Node& leaf = pool_[static_cast<size_t>(idx)];
      const int pos =
          static_cast<int>(std::lower_bound(leaf.keys,
                                            leaf.keys + leaf.count, key) -
                           leaf.keys);
      if (pos < leaf.count && leaf.keys[pos] == key) {
        leaf.values[pos] = value;  // overwrite existing key
        inserted = false;
        return std::nullopt;
      }
      inserted = true;
      ++size_;
      if (leaf.count < kNodeKeys) {
        for (int i = leaf.count; i > pos; --i) {
          leaf.keys[i] = leaf.keys[i - 1];
          leaf.values[i] = leaf.values[i - 1];
        }
        leaf.keys[pos] = key;
        leaf.values[pos] = value;
        ++leaf.count;
        return std::nullopt;
      }
      // Leaf split: merge the new entry into a temp array, halve it.
      double tmp_keys[kNodeKeys + 1];
      int64_t tmp_values[kNodeKeys + 1];
      for (int i = 0, j = 0; i <= kNodeKeys; ++i) {
        if (i == pos) {
          tmp_keys[i] = key;
          tmp_values[i] = value;
        } else {
          tmp_keys[i] = leaf.keys[j];
          tmp_values[i] = leaf.values[j];
          ++j;
        }
      }
      const int total = kNodeKeys + 1;
      const int left_n = (total + 1) / 2;
      leaf.count = static_cast<uint16_t>(left_n);
      for (int i = 0; i < left_n; ++i) {
        leaf.keys[i] = tmp_keys[i];
        leaf.values[i] = tmp_values[i];
      }
      SplitInfo split;
      split.right = Node();
      split.right.is_leaf = 1;
      split.right.count = static_cast<uint16_t>(total - left_n);
      for (int i = left_n; i < total; ++i) {
        split.right.keys[i - left_n] = tmp_keys[i];
        split.right.values[i - left_n] = tmp_values[i];
      }
      split.separator = split.right.keys[0];
      return split;
    }

    // Internal node.
    int pos;
    int32_t child_idx;
    {
      const Node& node = pool_[static_cast<size_t>(idx)];
      pos = RouteChild(node.keys, node.count, key);
      child_idx = node.first_child + pos;
    }
    std::optional<SplitInfo> child_split = insert_rec(child_idx);
    if (!child_split.has_value()) return std::nullopt;

    // The child split: its new right sibling must sit directly after it
    // inside this node's (contiguous) child group, so the group is
    // re-allocated one slot larger — the CSB+ trade-off.
    const Node node_copy = pool_[static_cast<size_t>(idx)];
    const int old_children = node_copy.count + 1;

    if (node_copy.count < kNodeKeys) {
      const int32_t new_base = AllocateGroup(old_children + 1);
      for (int i = 0; i <= pos; ++i) {
        pool_[static_cast<size_t>(new_base + i)] =
            pool_[static_cast<size_t>(node_copy.first_child + i)];
      }
      pool_[static_cast<size_t>(new_base + pos + 1)] = child_split->right;
      for (int i = pos + 1; i < old_children; ++i) {
        pool_[static_cast<size_t>(new_base + i + 1)] =
            pool_[static_cast<size_t>(node_copy.first_child + i)];
      }
      Node& node = pool_[static_cast<size_t>(idx)];
      node = node_copy;
      for (int i = node.count; i > pos; --i) node.keys[i] = node.keys[i - 1];
      node.keys[pos] = child_split->separator;
      ++node.count;
      node.first_child = new_base;
      return std::nullopt;
    }

    // This internal node is full too: split it into two nodes, each with
    // its own freshly allocated child group.
    const int total_children = kNodeKeys + 2;
    std::vector<Node> children(static_cast<size_t>(total_children));
    std::vector<double> seps(static_cast<size_t>(kNodeKeys + 1));
    {
      int j = 0;
      for (int i = 0; i < total_children; ++i) {
        if (i == pos + 1) {
          children[static_cast<size_t>(i)] = child_split->right;
        } else {
          children[static_cast<size_t>(i)] =
              pool_[static_cast<size_t>(node_copy.first_child + j)];
          ++j;
        }
      }
      j = 0;
      for (int i = 0; i <= kNodeKeys; ++i) {
        if (i == pos) {
          seps[static_cast<size_t>(i)] = child_split->separator;
        } else {
          seps[static_cast<size_t>(i)] = node_copy.keys[j];
          ++j;
        }
      }
    }
    const int left_children = total_children / 2 + 1;
    const int right_children = total_children - left_children;

    const int32_t left_base = AllocateGroup(left_children);
    const int32_t right_base = AllocateGroup(right_children);
    for (int i = 0; i < left_children; ++i) {
      pool_[static_cast<size_t>(left_base + i)] =
          children[static_cast<size_t>(i)];
    }
    for (int i = 0; i < right_children; ++i) {
      pool_[static_cast<size_t>(right_base + i)] =
          children[static_cast<size_t>(left_children + i)];
    }

    SplitInfo split;
    split.separator = seps[static_cast<size_t>(left_children - 1)];
    split.right = Node();
    split.right.is_leaf = 0;
    split.right.first_child = right_base;
    split.right.count = static_cast<uint16_t>(right_children - 1);
    for (int i = 0; i < right_children - 1; ++i) {
      split.right.keys[i] = seps[static_cast<size_t>(left_children + i)];
    }

    Node& node = pool_[static_cast<size_t>(idx)];
    node.is_leaf = 0;
    node.first_child = left_base;
    node.count = static_cast<uint16_t>(left_children - 1);
    for (int i = 0; i < left_children - 1; ++i) {
      node.keys[i] = seps[static_cast<size_t>(i)];
    }
    return split;
  };

  std::optional<SplitInfo> root_split = insert_rec(root_);
  if (root_split.has_value()) {
    // Grow a new root whose two children (old root, split-off right) form
    // a contiguous group.
    const int32_t group = AllocateGroup(2);
    pool_[static_cast<size_t>(group)] = pool_[static_cast<size_t>(root_)];
    pool_[static_cast<size_t>(group + 1)] = root_split->right;
    const int32_t new_root = AllocateGroup(1);
    Node& root = pool_[static_cast<size_t>(new_root)];
    root.is_leaf = 0;
    root.count = 1;
    root.first_child = group;
    root.keys[0] = root_split->separator;
    root_ = new_root;
    ++height_;
  }
  return inserted;
}

std::optional<int64_t> CsbTree::Find(double key) const {
  if (root_ < 0) return std::nullopt;
  int32_t idx = root_;
  while (!pool_[static_cast<size_t>(idx)].is_leaf) {
    const Node& node = pool_[static_cast<size_t>(idx)];
    idx = node.first_child + RouteChild(node.keys, node.count, key);
  }
  const Node& leaf = pool_[static_cast<size_t>(idx)];
  const int pos = static_cast<int>(
      std::lower_bound(leaf.keys, leaf.keys + leaf.count, key) - leaf.keys);
  if (pos < leaf.count && leaf.keys[pos] == key) return leaf.values[pos];
  return std::nullopt;
}

void CsbTree::Scan(double lo, double hi,
                   const std::function<void(double, int64_t)>& fn) const {
  if (root_ < 0 || lo > hi) return;
  std::function<void(int32_t)> visit = [&](int32_t idx) {
    const Node& node = pool_[static_cast<size_t>(idx)];
    if (node.is_leaf) {
      const int start = static_cast<int>(
          std::lower_bound(node.keys, node.keys + node.count, lo) -
          node.keys);
      for (int i = start; i < node.count && node.keys[i] <= hi; ++i) {
        fn(node.keys[i], node.values[i]);
      }
      return;
    }
    const int first = RouteChild(node.keys, node.count, lo);
    const int last = RouteChild(node.keys, node.count, hi);
    for (int i = first; i <= last; ++i) visit(node.first_child + i);
  };
  visit(root_);
}

Status CsbTree::CheckNode(int32_t index, double lo, double hi,
                          int depth) const {
  const Node& node = pool_[static_cast<size_t>(index)];
  for (int i = 0; i + 1 < node.count; ++i) {
    if (!(node.keys[i] < node.keys[i + 1])) {
      return Status::Internal("keys not strictly increasing in node " +
                              std::to_string(index));
    }
  }
  for (int i = 0; i < node.count; ++i) {
    if (node.keys[i] < lo || node.keys[i] >= hi) {
      return Status::Internal(StrPrintf(
          "key %g outside subtree bounds [%g, %g)", node.keys[i], lo, hi));
    }
  }
  if (node.is_leaf) {
    if (depth + 1 != height_) {
      return Status::Internal("leaf at wrong depth");
    }
    return Status::OK();
  }
  if (node.count < 1) {
    return Status::Internal("internal node with no separators");
  }
  if (node.first_child < 0 ||
      node.first_child + node.count >=
          static_cast<int32_t>(pool_.size())) {
    return Status::Internal("child group out of pool bounds");
  }
  for (int i = 0; i <= node.count; ++i) {
    const double child_lo = (i == 0) ? lo : node.keys[i - 1];
    const double child_hi = (i == node.count) ? hi : node.keys[i];
    RAQO_RETURN_IF_ERROR(
        CheckNode(node.first_child + i, child_lo, child_hi, depth + 1));
  }
  return Status::OK();
}

Status CsbTree::CheckInvariants() const {
  if (root_ < 0) {
    return size_ == 0 ? Status::OK()
                      : Status::Internal("empty tree with nonzero size");
  }
  RAQO_RETURN_IF_ERROR(
      CheckNode(root_, -std::numeric_limits<double>::infinity(),
                std::numeric_limits<double>::infinity(), 0));
  // The scan must see exactly size_ keys, in order.
  size_t seen = 0;
  double prev = -std::numeric_limits<double>::infinity();
  bool ordered = true;
  Scan(-std::numeric_limits<double>::infinity(),
       std::numeric_limits<double>::infinity(),
       [&](double k, int64_t) {
         if (k <= prev) ordered = false;
         prev = k;
         ++seen;
       });
  if (!ordered) return Status::Internal("scan out of order");
  if (seen != size_) {
    return Status::Internal(StrPrintf("scan saw %zu keys, size is %zu",
                                      seen, size_));
  }
  return Status::OK();
}

}  // namespace raqo::core
