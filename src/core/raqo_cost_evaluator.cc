#include "core/raqo_cost_evaluator.h"

#include <cmath>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "cost/features.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace raqo::core {

RaqoCostEvaluator::RaqoCostEvaluator(cost::JoinCostModels models,
                                     resource::ClusterConditions cluster,
                                     resource::PricingModel pricing,
                                     RaqoEvaluatorOptions options)
    : models_(std::move(models)),
      cluster_(cluster),
      pricing_(pricing),
      options_(options) {
  switch (options_.search) {
    case ResourceSearch::kBruteForce:
      planner_ = std::make_unique<BruteForceResourcePlanner>();
      resource_span_name_ = "planner.resource.grid";
      break;
    case ResourceSearch::kHillClimb:
      planner_ = std::make_unique<HillClimbResourcePlanner>();
      resource_span_name_ = "planner.resource.hillclimb";
      break;
    case ResourceSearch::kAcceleratedHillClimb:
      planner_ = std::make_unique<AcceleratedHillClimbResourcePlanner>();
      resource_span_name_ = "planner.resource.hillclimb";
      break;
    case ResourceSearch::kParallelBruteForce: {
      // Borrow the injected pool when there is one: evaluators pooled by
      // the runner or the server must all share one search pool, or N
      // planner workers times M search threads pile up.
      auto parallel =
          options_.search_pool != nullptr
              ? std::make_unique<ParallelBruteForceResourcePlanner>(
                    options_.search_pool)
              : std::make_unique<ParallelBruteForceResourcePlanner>(
                    options_.parallel_search_threads);
      parallel->set_min_parallel_cells(options_.min_parallel_grid_cells);
      planner_ = std::move(parallel);
      resource_span_name_ = "planner.resource.grid";
      break;
    }
    case ResourceSearch::kSwitchAwareGrid: {
      // Borrows the injected pool only: the paper-default grid sits far
      // below the parallel threshold, so the common case is sequential
      // anyway, and pruning makes big grids cheap before parallelism
      // would (inject a pool + lower min_parallel_grid_cells to fan out).
      auto switch_aware = std::make_unique<SwitchAwareGridResourcePlanner>(
          options_.search_pool);
      switch_aware->set_min_parallel_cells(options_.min_parallel_grid_cells);
      switch_aware->set_block_cells(options_.switch_block_cells);
      planner_ = std::move(switch_aware);
      resource_span_name_ = "planner.resource.grid";
      switch_aware_ = true;
      // Validate the monotonicity declaration of each model once, at
      // load: a rejected model plans exhaustively (no bound oracle) and
      // the rejection is counted, never silently pruned unsoundly.
      const plan::JoinImpl impls[2] = {plan::JoinImpl::kSortMergeJoin,
                                       plan::JoinImpl::kBroadcastHashJoin};
      for (int i = 0; i < 2; ++i) {
        Result<cost::ResourceBoundOracle> oracle =
            cost::ResourceBoundOracle::Create(models_.ForImpl(impls[i]));
        if (oracle.ok()) {
          oracles_[i] = *std::move(oracle);
        } else if (obs::MetricsOn()) {
          static obs::Counter* rejected = obs::DefaultMetrics().GetCounter(
              "planner.resource.monotonicity_rejected");
          rejected->Add(1);
        }
      }
      break;
    }
  }
  if (options_.use_cache) {
    cache_ = std::make_unique<ResourcePlanCache>(
        options_.cache_mode, options_.cache_threshold_gb,
        options_.cache_index, options_.cache_shards);
  }
}

void RaqoCostEvaluator::UpdateClusterConditions(
    resource::ClusterConditions cluster) {
  cluster_ = cluster;
  // Warm starts are snapped onto the current grid by index, so a stale
  // one is *safe* — but a fresh grid means the old optimum carries no
  // switch-point signal. Start cold like the caches do.
  last_best_[0].reset();
  last_best_[1].reset();
  ClearCache();
}

void RaqoCostEvaluator::BeginQuery() {
  last_best_[0].reset();
  last_best_[1].reset();
}

RaqoCostEvaluator::~RaqoCostEvaluator() { FlushSharedCacheInserts(); }

void RaqoCostEvaluator::ClearCache() {
  // Cluster-condition changes invalidate every plan, staged or not: drop
  // the write-behind buffer instead of flushing stale entries onward.
  pending_inserts_.clear();
  staging_.reset();
  if (ResourcePlanCache* cache = active_cache()) cache->Clear();
}

CacheStats RaqoCostEvaluator::cache_stats() const {
  const ResourcePlanCache* cache = active_cache();
  return cache != nullptr ? cache->stats() : CacheStats{};
}

CacheStats RaqoCostEvaluator::ResetCacheStats() {
  ResourcePlanCache* cache = active_cache();
  return cache != nullptr ? cache->ResetStats() : CacheStats{};
}

size_t RaqoCostEvaluator::cache_size() const {
  const ResourcePlanCache* cache = active_cache();
  return cache != nullptr ? cache->size() : 0;
}

std::vector<ShardStats> RaqoCostEvaluator::cache_shard_stats() const {
  const ResourcePlanCache* cache = active_cache();
  return cache != nullptr ? cache->shard_stats()
                          : std::vector<ShardStats>{};
}

void RaqoCostEvaluator::ShareCache(std::shared_ptr<ResourcePlanCache> cache) {
  // Plans staged against the outgoing cache belong to it; the staging
  // memo is dropped too, since it may mirror entries the new cache never
  // saw (exact-mode entries would still be *correct*, but a fresh memo
  // keeps cache attribution simple).
  FlushSharedCacheInserts();
  staging_.reset();
  shared_cache_ = std::move(cache);
}

void RaqoCostEvaluator::FlushSharedCacheInserts() {
  if (pending_inserts_.empty()) return;
  if (shared_cache_ != nullptr) {
    shared_cache_->InsertBatch(pending_inserts_);
  }
  pending_inserts_.clear();
}

Result<optimizer::OperatorCost> RaqoCostEvaluator::CostJoinImpl(
    const optimizer::JoinContext& context) {
  const double ss_gb = context.smaller_gb();
  const cost::OperatorCostModel& model = models_.ForImpl(context.impl);

  // Restrict the search to the feasible sub-grid. For a broadcast join
  // the container must hold the build side, so the smallest feasible
  // container size may exceed the cluster minimum.
  resource::ClusterConditions search_cluster = cluster_;
  if (context.impl == plan::JoinImpl::kBroadcastHashJoin) {
    const double min_cs = ss_gb / options_.bhj_capacity_factor;
    if (min_cs > cluster_.max().container_size_gb() + 1e-9) {
      return Status::ResourceExhausted(StrPrintf(
          "BHJ build side %.2f GB fits no container up to %.2f GB", ss_gb,
          cluster_.max().container_size_gb()));
    }
    if (min_cs > cluster_.min().container_size_gb()) {
      // Snap the minimum container size up onto the grid.
      const double step = cluster_.step().container_size_gb();
      const double base = cluster_.min().container_size_gb();
      const double snapped =
          base + std::ceil((min_cs - base) / step - 1e-9) * step;
      resource::ResourceConfig new_min = cluster_.min();
      new_min.set_container_size_gb(
          std::min(snapped, cluster_.max().container_size_gb()));
      RAQO_ASSIGN_OR_RETURN(
          search_cluster,
          resource::ClusterConditions::Create(new_min, cluster_.max(),
                                              cluster_.step()));
    }
  }

  const double ls_gb = context.larger_gb();
  auto objective = [&](const resource::ResourceConfig& config) {
    cost::JoinFeatures features;
    features.smaller_gb = ss_gb;
    features.larger_gb = ls_gb;
    features.container_size_gb = config.container_size_gb();
    features.num_containers = config.num_containers();
    const double seconds = model.PredictSeconds(features);
    const double dollars = pricing_.Cost(config, seconds);
    return cost::CostVector{seconds, dollars}.Weighted(options_.time_weight);
  };

  // Cache lookup first (Section VI-C), keyed by the data characteristic.
  // Under write-behind batching the private staging memo is consulted
  // before the shared cache: exact-mode hits provably equal
  // recomputation, so the answer is the same either way and repeated
  // characteristics (the common case under Selinger's DP) never touch
  // the shared cache's stripe locks.
  ResourcePlanCache* cache = active_cache();
  const bool write_behind = batching_shared_inserts();
  if (write_behind && staging_ == nullptr) {
    staging_ = std::make_unique<ResourcePlanCache>(
        CacheLookupMode::kExact, /*threshold_gb=*/0.0, options_.cache_index,
        /*shards=*/0);
  }
  if (cache != nullptr) {
    std::optional<CachedResourcePlan> hit;
    if (write_behind) {
      hit = staging_->Lookup(model.name(), ss_gb, ls_gb);
      if (!hit) {
        hit = cache->Lookup(model.name(), ss_gb, ls_gb);
        // Memoize shared hits privately so repeats stay lock-free.
        if (hit) staging_->Insert(model.name(), *hit);
      }
    } else {
      hit = cache->Lookup(model.name(), ss_gb, ls_gb);
    }
    if (hit) {
      // Weighted-average hits can produce off-grid configurations; snap
      // back onto the allocatable grid.
      const resource::ResourceConfig config =
          cluster_.SnapToGrid(hit->config);
      cost::JoinFeatures features;
      features.smaller_gb = ss_gb;
      features.larger_gb = ls_gb;
      features.container_size_gb = config.container_size_gb();
      features.num_containers = config.num_containers();
      const double seconds = model.PredictSeconds(features);
      optimizer::OperatorCost out;
      out.cost.seconds = seconds;
      out.cost.dollars = pricing_.Cost(config, seconds);
      out.resources = config;
      return out;
    }
  }

  // Acceleration hints for the switch-aware search. Both are pure
  // accelerators (bit-identical results with or without); the objective
  // lower bound composes the model-seconds bound with the pricing model
  // evaluated at the box's low corner, which under-approximates the
  // weighted objective whenever time_weight lies in [0, 1] and the
  // price rate is non-negative — outside that envelope the bound is
  // simply not offered and the sweep runs exhaustively.
  const size_t model_idx =
      context.impl == plan::JoinImpl::kSortMergeJoin ? 0 : 1;
  ResourceSearchHints hints;
  if (switch_aware_) {
    hints.warm_start = last_best_[model_idx];
    const double tw = options_.time_weight;
    if (oracles_[model_idx].has_value() && tw >= 0.0 && tw <= 1.0 &&
        pricing_.dollars_per_gb_hour() >= 0.0) {
      const cost::ResourceBoundOracle* oracle = &*oracles_[model_idx];
      hints.box_lower_bound = [this, oracle, tw, ss_gb, ls_gb](
                                  const resource::ResourceConfig& lo,
                                  const resource::ResourceConfig& hi) {
        cost::JoinFeatures data;
        data.smaller_gb = ss_gb;
        data.larger_gb = ls_gb;
        const double sec_lb = oracle->SecondsLowerBound(data, lo, hi);
        // Same floating-point expression shape as the objective, fed
        // with componentwise lower bounds: every op in the chain is
        // monotone under round-to-nearest, so bound <= objective holds
        // at the bit level, not just in real arithmetic.
        const double dollars_lb = pricing_.Cost(lo, sec_lb);
        return cost::CostVector{sec_lb, dollars_lb}.Weighted(tw);
      };
    }
  }
  auto run_search = [&] {
    return switch_aware_ ? planner_->PlanResourcesWithHints(
                               objective, search_cluster, hints)
                         : planner_->PlanResources(objective, search_cluster);
  };

  Result<ResourcePlanResult> planned = [&] {
    const bool metrics_on = obs::MetricsOn();
    const bool tracing_on = obs::TracingOn();
    if (!metrics_on && !tracing_on) {
      return run_search();
    }
    Stopwatch timer;
    obs::Span span = obs::DefaultTracer().StartSpan(resource_span_name_);
    Result<ResourcePlanResult> result = run_search();
    if (span.recording()) {
      span.SetAttr("strategy", planner_->name());
      span.SetAttr("model", model.name());
      span.SetAttr("smaller_gb", ss_gb);
      span.SetAttr("larger_gb", ls_gb);
      if (result.ok()) {
        span.SetAttr("configs_explored",
                     static_cast<int64_t>(result->configs_explored));
        if (result->cells_pruned > 0) {
          span.SetAttr("cells_pruned", result->cells_pruned);
        }
      } else {
        span.SetAttr("error", result.status().message());
      }
    }
    if (metrics_on) {
      static obs::Counter* searches =
          obs::DefaultMetrics().GetCounter("planner.resource.searches");
      static obs::Counter* explored = obs::DefaultMetrics().GetCounter(
          "planner.resource.configs_explored");
      static obs::Histogram* latency =
          obs::DefaultMetrics().GetHistogram("planner.resource.wall_us");
      searches->Add(1);
      if (result.ok()) explored->Add(result->configs_explored);
      latency->Record(timer.ElapsedMicros());
      if (result.ok() && switch_aware_) {
        static obs::Counter* pruned = obs::DefaultMetrics().GetCounter(
            "planner.resource.cells_pruned");
        static obs::Counter* replanned = obs::DefaultMetrics().GetCounter(
            "planner.resource.cells_replanned");
        static obs::Counter* reused = obs::DefaultMetrics().GetCounter(
            "planner.resource.plans_reused");
        pruned->Add(result->cells_pruned);
        // Cells evaluated beyond the warm-start re-cost — the true
        // incremental work of this search.
        const int64_t beyond_warm =
            result->configs_explored - (hints.warm_start.has_value() ? 1 : 0);
        replanned->Add(beyond_warm > 0 ? beyond_warm : 0);
        if (result->warm_start_won) reused->Add(1);
      }
    }
    return result;
  }();
  if (!planned.ok()) return planned.status();
  AddResourceConfigsExplored(planned->configs_explored);
  if (switch_aware_) last_best_[model_idx] = planned->config;

  if (cache != nullptr) {
    CachedResourcePlan entry;
    entry.key_gb = ss_gb;
    entry.config = planned->config;
    entry.cost = planned->cost;
    entry.larger_gb = ls_gb;
    if (write_behind) {
      // Stage privately and defer the shared insert: the shard locks are
      // then taken once per `shared_insert_batch` plans, not per plan.
      staging_->Insert(model.name(), entry);
      pending_inserts_.push_back(CacheEntryRecord{model.name(), entry});
      if (pending_inserts_.size() >= options_.shared_insert_batch) {
        FlushSharedCacheInserts();
      }
    } else {
      cache->Insert(model.name(), entry);
    }
  }

  cost::JoinFeatures features;
  features.smaller_gb = ss_gb;
  features.larger_gb = ls_gb;
  features.container_size_gb = planned->config.container_size_gb();
  features.num_containers = planned->config.num_containers();
  const double seconds = model.PredictSeconds(features);
  optimizer::OperatorCost out;
  out.cost.seconds = seconds;
  out.cost.dollars = pricing_.Cost(planned->config, seconds);
  out.resources = planned->config;
  return out;
}

}  // namespace raqo::core
