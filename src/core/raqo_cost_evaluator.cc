#include "core/raqo_cost_evaluator.h"

#include <cmath>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "cost/features.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace raqo::core {

RaqoCostEvaluator::RaqoCostEvaluator(cost::JoinCostModels models,
                                     resource::ClusterConditions cluster,
                                     resource::PricingModel pricing,
                                     RaqoEvaluatorOptions options)
    : models_(std::move(models)),
      cluster_(cluster),
      pricing_(pricing),
      options_(options) {
  switch (options_.search) {
    case ResourceSearch::kBruteForce:
      planner_ = std::make_unique<BruteForceResourcePlanner>();
      resource_span_name_ = "planner.resource.grid";
      break;
    case ResourceSearch::kHillClimb:
      planner_ = std::make_unique<HillClimbResourcePlanner>();
      resource_span_name_ = "planner.resource.hillclimb";
      break;
    case ResourceSearch::kAcceleratedHillClimb:
      planner_ = std::make_unique<AcceleratedHillClimbResourcePlanner>();
      resource_span_name_ = "planner.resource.hillclimb";
      break;
    case ResourceSearch::kParallelBruteForce: {
      // Borrow the injected pool when there is one: evaluators pooled by
      // the runner or the server must all share one search pool, or N
      // planner workers times M search threads pile up.
      auto parallel =
          options_.search_pool != nullptr
              ? std::make_unique<ParallelBruteForceResourcePlanner>(
                    options_.search_pool)
              : std::make_unique<ParallelBruteForceResourcePlanner>(
                    options_.parallel_search_threads);
      parallel->set_min_parallel_cells(options_.min_parallel_grid_cells);
      planner_ = std::move(parallel);
      resource_span_name_ = "planner.resource.grid";
      break;
    }
  }
  if (options_.use_cache) {
    cache_ = std::make_unique<ResourcePlanCache>(
        options_.cache_mode, options_.cache_threshold_gb,
        options_.cache_index, options_.cache_shards);
  }
}

void RaqoCostEvaluator::UpdateClusterConditions(
    resource::ClusterConditions cluster) {
  cluster_ = cluster;
  ClearCache();
}

RaqoCostEvaluator::~RaqoCostEvaluator() { FlushSharedCacheInserts(); }

void RaqoCostEvaluator::ClearCache() {
  // Cluster-condition changes invalidate every plan, staged or not: drop
  // the write-behind buffer instead of flushing stale entries onward.
  pending_inserts_.clear();
  staging_.reset();
  if (ResourcePlanCache* cache = active_cache()) cache->Clear();
}

CacheStats RaqoCostEvaluator::cache_stats() const {
  const ResourcePlanCache* cache = active_cache();
  return cache != nullptr ? cache->stats() : CacheStats{};
}

CacheStats RaqoCostEvaluator::ResetCacheStats() {
  ResourcePlanCache* cache = active_cache();
  return cache != nullptr ? cache->ResetStats() : CacheStats{};
}

size_t RaqoCostEvaluator::cache_size() const {
  const ResourcePlanCache* cache = active_cache();
  return cache != nullptr ? cache->size() : 0;
}

std::vector<ShardStats> RaqoCostEvaluator::cache_shard_stats() const {
  const ResourcePlanCache* cache = active_cache();
  return cache != nullptr ? cache->shard_stats()
                          : std::vector<ShardStats>{};
}

void RaqoCostEvaluator::ShareCache(std::shared_ptr<ResourcePlanCache> cache) {
  // Plans staged against the outgoing cache belong to it; the staging
  // memo is dropped too, since it may mirror entries the new cache never
  // saw (exact-mode entries would still be *correct*, but a fresh memo
  // keeps cache attribution simple).
  FlushSharedCacheInserts();
  staging_.reset();
  shared_cache_ = std::move(cache);
}

void RaqoCostEvaluator::FlushSharedCacheInserts() {
  if (pending_inserts_.empty()) return;
  if (shared_cache_ != nullptr) {
    shared_cache_->InsertBatch(pending_inserts_);
  }
  pending_inserts_.clear();
}

Result<optimizer::OperatorCost> RaqoCostEvaluator::CostJoinImpl(
    const optimizer::JoinContext& context) {
  const double ss_gb = context.smaller_gb();
  const cost::OperatorCostModel& model = models_.ForImpl(context.impl);

  // Restrict the search to the feasible sub-grid. For a broadcast join
  // the container must hold the build side, so the smallest feasible
  // container size may exceed the cluster minimum.
  resource::ClusterConditions search_cluster = cluster_;
  if (context.impl == plan::JoinImpl::kBroadcastHashJoin) {
    const double min_cs = ss_gb / options_.bhj_capacity_factor;
    if (min_cs > cluster_.max().container_size_gb() + 1e-9) {
      return Status::ResourceExhausted(StrPrintf(
          "BHJ build side %.2f GB fits no container up to %.2f GB", ss_gb,
          cluster_.max().container_size_gb()));
    }
    if (min_cs > cluster_.min().container_size_gb()) {
      // Snap the minimum container size up onto the grid.
      const double step = cluster_.step().container_size_gb();
      const double base = cluster_.min().container_size_gb();
      const double snapped =
          base + std::ceil((min_cs - base) / step - 1e-9) * step;
      resource::ResourceConfig new_min = cluster_.min();
      new_min.set_container_size_gb(
          std::min(snapped, cluster_.max().container_size_gb()));
      RAQO_ASSIGN_OR_RETURN(
          search_cluster,
          resource::ClusterConditions::Create(new_min, cluster_.max(),
                                              cluster_.step()));
    }
  }

  const double ls_gb = context.larger_gb();
  auto objective = [&](const resource::ResourceConfig& config) {
    cost::JoinFeatures features;
    features.smaller_gb = ss_gb;
    features.larger_gb = ls_gb;
    features.container_size_gb = config.container_size_gb();
    features.num_containers = config.num_containers();
    const double seconds = model.PredictSeconds(features);
    const double dollars = pricing_.Cost(config, seconds);
    return cost::CostVector{seconds, dollars}.Weighted(options_.time_weight);
  };

  // Cache lookup first (Section VI-C), keyed by the data characteristic.
  // Under write-behind batching the private staging memo is consulted
  // before the shared cache: exact-mode hits provably equal
  // recomputation, so the answer is the same either way and repeated
  // characteristics (the common case under Selinger's DP) never touch
  // the shared cache's stripe locks.
  ResourcePlanCache* cache = active_cache();
  const bool write_behind = batching_shared_inserts();
  if (write_behind && staging_ == nullptr) {
    staging_ = std::make_unique<ResourcePlanCache>(
        CacheLookupMode::kExact, /*threshold_gb=*/0.0, options_.cache_index,
        /*shards=*/0);
  }
  if (cache != nullptr) {
    std::optional<CachedResourcePlan> hit;
    if (write_behind) {
      hit = staging_->Lookup(model.name(), ss_gb, ls_gb);
      if (!hit) {
        hit = cache->Lookup(model.name(), ss_gb, ls_gb);
        // Memoize shared hits privately so repeats stay lock-free.
        if (hit) staging_->Insert(model.name(), *hit);
      }
    } else {
      hit = cache->Lookup(model.name(), ss_gb, ls_gb);
    }
    if (hit) {
      // Weighted-average hits can produce off-grid configurations; snap
      // back onto the allocatable grid.
      const resource::ResourceConfig config =
          cluster_.SnapToGrid(hit->config);
      cost::JoinFeatures features;
      features.smaller_gb = ss_gb;
      features.larger_gb = ls_gb;
      features.container_size_gb = config.container_size_gb();
      features.num_containers = config.num_containers();
      const double seconds = model.PredictSeconds(features);
      optimizer::OperatorCost out;
      out.cost.seconds = seconds;
      out.cost.dollars = pricing_.Cost(config, seconds);
      out.resources = config;
      return out;
    }
  }

  Result<ResourcePlanResult> planned = [&] {
    const bool metrics_on = obs::MetricsOn();
    const bool tracing_on = obs::TracingOn();
    if (!metrics_on && !tracing_on) {
      return planner_->PlanResources(objective, search_cluster);
    }
    Stopwatch timer;
    obs::Span span = obs::DefaultTracer().StartSpan(resource_span_name_);
    Result<ResourcePlanResult> result =
        planner_->PlanResources(objective, search_cluster);
    if (span.recording()) {
      span.SetAttr("strategy", planner_->name());
      span.SetAttr("model", model.name());
      span.SetAttr("smaller_gb", ss_gb);
      span.SetAttr("larger_gb", ls_gb);
      if (result.ok()) {
        span.SetAttr("configs_explored",
                     static_cast<int64_t>(result->configs_explored));
      } else {
        span.SetAttr("error", result.status().message());
      }
    }
    if (metrics_on) {
      static obs::Counter* searches =
          obs::DefaultMetrics().GetCounter("planner.resource.searches");
      static obs::Counter* explored = obs::DefaultMetrics().GetCounter(
          "planner.resource.configs_explored");
      static obs::Histogram* latency =
          obs::DefaultMetrics().GetHistogram("planner.resource.wall_us");
      searches->Add(1);
      if (result.ok()) explored->Add(result->configs_explored);
      latency->Record(timer.ElapsedMicros());
    }
    return result;
  }();
  if (!planned.ok()) return planned.status();
  AddResourceConfigsExplored(planned->configs_explored);

  if (cache != nullptr) {
    CachedResourcePlan entry;
    entry.key_gb = ss_gb;
    entry.config = planned->config;
    entry.cost = planned->cost;
    entry.larger_gb = ls_gb;
    if (write_behind) {
      // Stage privately and defer the shared insert: the shard locks are
      // then taken once per `shared_insert_batch` plans, not per plan.
      staging_->Insert(model.name(), entry);
      pending_inserts_.push_back(CacheEntryRecord{model.name(), entry});
      if (pending_inserts_.size() >= options_.shared_insert_batch) {
        FlushSharedCacheInserts();
      }
    } else {
      cache->Insert(model.name(), entry);
    }
  }

  cost::JoinFeatures features;
  features.smaller_gb = ss_gb;
  features.larger_gb = ls_gb;
  features.container_size_gb = planned->config.container_size_gb();
  features.num_containers = planned->config.num_containers();
  const double seconds = model.PredictSeconds(features);
  optimizer::OperatorCost out;
  out.cost.seconds = seconds;
  out.cost.dollars = pricing_.Cost(planned->config, seconds);
  out.resources = planned->config;
  return out;
}

}  // namespace raqo::core
