#include "core/search_space.h"

#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace raqo::core {

std::string SearchSpaceSize::ToString() const {
  return StrPrintf("joint 10^%.1f, independent 10^%.1f", log10_joint,
                   log10_independent);
}

SearchSpaceSize ComputeSearchSpace(int num_relations, int num_impls,
                                   int container_count_choices,
                                   int container_size_choices) {
  RAQO_CHECK(num_relations >= 1 && num_impls >= 1 &&
             container_count_choices >= 1 && container_size_choices >= 1)
      << "search-space arguments must be positive";
  // log10(n!) via lgamma.
  const double log10_factorial =
      std::lgamma(static_cast<double>(num_relations) + 1.0) / std::log(10.0);
  const double log10_per_op =
      std::log10(static_cast<double>(num_impls)) +
      std::log10(static_cast<double>(container_count_choices)) +
      std::log10(static_cast<double>(container_size_choices));
  SearchSpaceSize out;
  out.log10_joint =
      log10_factorial + static_cast<double>(num_relations) * log10_per_op;
  out.log10_independent = log10_factorial + log10_per_op +
                          std::log10(static_cast<double>(num_relations));
  return out;
}

}  // namespace raqo::core
