#ifndef RAQO_CORE_CONCURRENT_WORKLOAD_RUNNER_H_
#define RAQO_CORE_CONCURRENT_WORKLOAD_RUNNER_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/raqo_planner.h"
#include "core/workload_runner.h"

namespace raqo::core {

/// Configuration of the concurrent planning service.
struct ConcurrentRunnerOptions {
  /// Worker threads; each gets a private RaqoPlanner.
  int num_threads = 4;
  /// Share one thread-safe resource-plan cache across all workers (the
  /// across-query caching scenario of Figure 15(b), served concurrently).
  /// Only meaningful when the planner options enable caching; with it
  /// off, every worker keeps the private cache its options describe.
  bool share_cache = true;
  /// Lock stripes of the shared cache.
  size_t cache_shards = 8;
};

/// The concurrent counterpart of WorkloadRunner: a pool of N worker
/// threads, each owning a private RaqoPlanner, pulling queries from the
/// workload and optionally sharing one striped resource-plan cache — a
/// miniature optimizer service handling many tenants at once.
///
/// Reports are merged by submission order, so `Run` returns the same
/// per-query sequence as the sequential runner regardless of which
/// worker planned which query. With caching off, or with a shared cache
/// in kExact lookup mode, the chosen plans and costs are identical to a
/// sequential run: planning is deterministic, and an exact hit is only
/// taken when the entry's full data characteristic (smaller AND larger
/// input size) matches, so it returns exactly what planning would
/// recompute no matter which worker populated the entry. With
/// similarity-based lookup modes the hit pattern — and thus the configs
/// near a threshold — may differ run to run.
///
/// Unlike the fail-fast sequential runner, every query is always
/// attempted; on failures the error reported is the one of the lowest
/// query index, which keeps the returned status deterministic under any
/// thread interleaving.
class ConcurrentWorkloadRunner {
 public:
  /// Mirrors the RaqoPlanner constructor plus the concurrency knobs.
  /// `catalog` must outlive the runner. When `share_cache` is set and
  /// the evaluator options enable caching, the shared cache is created
  /// here and persists across Run calls (across-query semantics). The
  /// worker pool, the per-worker planners, and (for the parallel
  /// brute-force search) one resource-search pool shared by every
  /// planner are all built here too and reused by every Run — repeated
  /// Run calls spawn no threads and rebuild no planners.
  ConcurrentWorkloadRunner(
      const catalog::Catalog* catalog, cost::JoinCostModels models,
      resource::ClusterConditions cluster,
      resource::PricingModel pricing = resource::PricingModel(),
      RaqoPlannerOptions planner_options = RaqoPlannerOptions(),
      ConcurrentRunnerOptions runner_options = ConcurrentRunnerOptions());

  /// Plans every query, fanned out across the worker pool.
  Result<WorkloadReport> Run(const std::vector<WorkloadQuery>& workload);

  /// Cumulative hit/miss counters of the shared cache (zeros when no
  /// cache is shared). Per-run deltas are in WorkloadReport::shared_cache.
  CacheStats shared_cache_stats() const;

  /// Entries currently held by the shared cache (0 when none).
  size_t shared_cache_size() const;

  /// Per-shard activity of the shared cache (empty when no cache is
  /// shared): entries, lookups, inserts, and lock contention per stripe.
  std::vector<ShardStats> shared_cache_shard_stats() const;

  int num_threads() const { return options_.num_threads; }
  bool has_shared_cache() const { return shared_cache_ != nullptr; }

 private:
  const catalog::Catalog* catalog_;
  cost::JoinCostModels models_;
  resource::ClusterConditions cluster_;
  resource::PricingModel pricing_;
  RaqoPlannerOptions planner_options_;
  ConcurrentRunnerOptions options_;
  std::shared_ptr<ResourcePlanCache> shared_cache_;
  /// Persistent worker pool running workers 1..N-1 of every Run (absent
  /// with a single worker; the calling thread is always worker 0).
  std::unique_ptr<ThreadPool> pool_;
  /// One resource-search pool shared by every planner's parallel
  /// brute-force search (absent for the other strategies, or when the
  /// caller injected its own via the evaluator options). Distinct from
  /// `pool_` on purpose: planner workers block in ParallelFor, which
  /// must never run on the pool the caller occupies. Declared before
  /// `planners_` so the planners (which borrow it) are destroyed first.
  std::unique_ptr<ThreadPool> search_pool_;
  /// One private planner per worker, reused across Run calls.
  std::vector<std::unique_ptr<RaqoPlanner>> planners_;
};

}  // namespace raqo::core

#endif  // RAQO_CORE_CONCURRENT_WORKLOAD_RUNNER_H_
