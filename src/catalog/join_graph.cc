#include "catalog/join_graph.h"

#include <algorithm>

namespace raqo::catalog {

Status JoinGraph::AddEdge(TableId left, TableId right, double selectivity,
                          std::string predicate) {
  if (left < 0 || right < 0) {
    return Status::InvalidArgument("JoinEdge table ids must be non-negative");
  }
  if (left == right) {
    return Status::InvalidArgument("JoinEdge must connect distinct tables");
  }
  if (!(selectivity > 0.0) || selectivity > 1.0) {
    return Status::InvalidArgument("JoinEdge selectivity must be in (0, 1]");
  }
  edges_.push_back(JoinEdge{left, right, selectivity, std::move(predicate)});
  return Status::OK();
}

bool JoinGraph::HasEdge(TableId a, TableId b) const {
  for (const JoinEdge& e : edges_) {
    if ((e.left == a && e.right == b) || (e.left == b && e.right == a)) {
      return true;
    }
  }
  return false;
}

double JoinGraph::EdgeSelectivity(TableId a, TableId b) const {
  for (const JoinEdge& e : edges_) {
    if ((e.left == a && e.right == b) || (e.left == b && e.right == a)) {
      return e.selectivity;
    }
  }
  return 1.0;
}

std::vector<TableId> JoinGraph::Neighbors(TableId t) const {
  std::vector<TableId> out;
  for (const JoinEdge& e : edges_) {
    if (e.left == t) out.push_back(e.right);
    if (e.right == t) out.push_back(e.left);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool JoinGraph::IsConnected(const std::vector<TableId>& tables) const {
  if (tables.size() <= 1) return true;
  std::vector<TableId> frontier = {tables[0]};
  std::vector<bool> seen(tables.size(), false);
  seen[0] = true;
  size_t seen_count = 1;
  auto index_of = [&](TableId t) -> int {
    for (size_t i = 0; i < tables.size(); ++i) {
      if (tables[i] == t) return static_cast<int>(i);
    }
    return -1;
  };
  while (!frontier.empty() && seen_count < tables.size()) {
    const TableId cur = frontier.back();
    frontier.pop_back();
    for (TableId n : Neighbors(cur)) {
      const int idx = index_of(n);
      if (idx >= 0 && !seen[idx]) {
        seen[idx] = true;
        ++seen_count;
        frontier.push_back(n);
      }
    }
  }
  return seen_count == tables.size();
}

}  // namespace raqo::catalog
