#include "catalog/catalog.h"

#include <algorithm>

#include "common/logging.h"

namespace raqo::catalog {

Result<TableId> Catalog::AddTable(TableDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  if (!(def.row_count > 0.0) || !(def.row_bytes > 0.0)) {
    return Status::InvalidArgument("table statistics must be positive: " +
                                   def.name);
  }
  for (const TableDef& t : tables_) {
    if (t.name == def.name) {
      return Status::InvalidArgument("duplicate table name: " + def.name);
    }
  }
  tables_.push_back(std::move(def));
  return static_cast<TableId>(tables_.size() - 1);
}

Status Catalog::AddJoin(TableId left, TableId right, double selectivity,
                        std::string predicate) {
  const auto n = static_cast<TableId>(tables_.size());
  if (left < 0 || left >= n || right < 0 || right >= n) {
    return Status::NotFound("AddJoin references unknown table id");
  }
  return join_graph_.AddEdge(left, right, selectivity, std::move(predicate));
}

Status Catalog::AddJoinOnColumns(TableId left,
                                 const std::string& left_column,
                                 TableId right,
                                 const std::string& right_column) {
  const auto n = static_cast<TableId>(tables_.size());
  if (left < 0 || left >= n || right < 0 || right >= n) {
    return Status::NotFound("AddJoinOnColumns references unknown table id");
  }
  const ColumnDef* lc =
      tables_[static_cast<size_t>(left)].FindColumn(left_column);
  const ColumnDef* rc =
      tables_[static_cast<size_t>(right)].FindColumn(right_column);
  if (lc == nullptr) {
    return Status::NotFound("no column '" + left_column + "' in table " +
                            tables_[static_cast<size_t>(left)].name);
  }
  if (rc == nullptr) {
    return Status::NotFound("no column '" + right_column + "' in table " +
                            tables_[static_cast<size_t>(right)].name);
  }
  if (lc->distinct_values <= 0.0 || rc->distinct_values <= 0.0) {
    return Status::InvalidArgument(
        "columns need positive distinct counts to derive a selectivity");
  }
  const double selectivity =
      1.0 / std::max(lc->distinct_values, rc->distinct_values);
  return join_graph_.AddEdge(
      left, right, selectivity,
      tables_[static_cast<size_t>(left)].name + "." + left_column + " = " +
          tables_[static_cast<size_t>(right)].name + "." + right_column);
}

const TableDef& Catalog::table(TableId id) const {
  RAQO_CHECK(id >= 0 && static_cast<size_t>(id) < tables_.size())
      << "invalid table id " << id;
  return tables_[static_cast<size_t>(id)];
}

Result<TableId> Catalog::FindTable(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].name == name) return static_cast<TableId>(i);
  }
  return Status::NotFound("no such table: " + name);
}

std::vector<TableId> Catalog::AllTableIds() const {
  std::vector<TableId> out;
  out.reserve(tables_.size());
  for (size_t i = 0; i < tables_.size(); ++i) {
    out.push_back(static_cast<TableId>(i));
  }
  return out;
}

}  // namespace raqo::catalog
