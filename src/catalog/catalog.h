#ifndef RAQO_CATALOG_CATALOG_H_
#define RAQO_CATALOG_CATALOG_H_

#include <string>
#include <vector>

#include "catalog/join_graph.h"
#include "catalog/table.h"
#include "common/result.h"
#include "common/status.h"

namespace raqo::catalog {

/// The schema the optimizer plans against: a set of tables with statistics
/// plus the join graph connecting them.
class Catalog {
 public:
  Catalog() = default;

  /// Registers a table; returns its dense id. Fails on duplicate names or
  /// non-positive statistics.
  Result<TableId> AddTable(TableDef def);

  /// Adds a join edge between two previously registered tables.
  Status AddJoin(TableId left, TableId right, double selectivity,
                 std::string predicate = "");

  /// Adds a join edge whose selectivity is *derived* from column
  /// statistics — the textbook equi-join estimate 1/max(ndv_left,
  /// ndv_right). Both columns must exist with positive distinct counts.
  Status AddJoinOnColumns(TableId left, const std::string& left_column,
                          TableId right, const std::string& right_column);

  size_t num_tables() const { return tables_.size(); }

  /// Table definition by id; id must be valid.
  const TableDef& table(TableId id) const;

  /// Looks a table up by name.
  Result<TableId> FindTable(const std::string& name) const;

  const JoinGraph& join_graph() const { return join_graph_; }

  /// All table ids, 0..n-1.
  std::vector<TableId> AllTableIds() const;

 private:
  std::vector<TableDef> tables_;
  JoinGraph join_graph_;
};

}  // namespace raqo::catalog

#endif  // RAQO_CATALOG_CATALOG_H_
