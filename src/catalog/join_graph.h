#ifndef RAQO_CATALOG_JOIN_GRAPH_H_
#define RAQO_CATALOG_JOIN_GRAPH_H_

#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "common/status.h"

namespace raqo::catalog {

/// An (equi-)join edge between two tables with its join selectivity, i.e.
/// |A join B| = sel * |A| * |B|. The paper keeps the TPC-H join edges and
/// selectivities and reuses TPC-H-like selectivities for random schemas
/// (Section VII, Setup).
struct JoinEdge {
  TableId left = kInvalidTableId;
  TableId right = kInvalidTableId;
  double selectivity = 1.0;
  /// Human-readable predicate, e.g. "o_orderkey = l_orderkey".
  std::string predicate;
};

/// The join graph over a catalog's tables: which pairs can be joined and
/// how selective those joins are.
class JoinGraph {
 public:
  JoinGraph() = default;

  /// Adds an edge; validates ids are distinct, non-negative, and the
  /// selectivity lies in (0, 1].
  Status AddEdge(TableId left, TableId right, double selectivity,
                 std::string predicate = "");

  const std::vector<JoinEdge>& edges() const { return edges_; }

  /// True if some edge connects a and b (in either direction).
  bool HasEdge(TableId a, TableId b) const;

  /// Selectivity of the edge between a and b, or 1.0 when no edge exists
  /// (cross product).
  double EdgeSelectivity(TableId a, TableId b) const;

  /// Tables adjacent to `t`.
  std::vector<TableId> Neighbors(TableId t) const;

  /// True when the given table set is connected under the join edges.
  /// An empty set is trivially connected; a singleton too.
  bool IsConnected(const std::vector<TableId>& tables) const;

 private:
  std::vector<JoinEdge> edges_;
};

}  // namespace raqo::catalog

#endif  // RAQO_CATALOG_JOIN_GRAPH_H_
