#ifndef RAQO_CATALOG_RANDOM_SCHEMA_H_
#define RAQO_CATALOG_RANDOM_SCHEMA_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"

namespace raqo::catalog {

/// Parameters of the randomly generated schema used by the paper's
/// scalability evaluation (Section VII, Setup): "a random number of tables,
/// each of which have a randomly picked row size between 100 and 200 bytes,
/// and a randomly picked number of rows between 100K and 2M. We then
/// randomly generate join edges to create the join graph (with similar join
/// selectivities as in the TPC-H schema)."
struct RandomSchemaOptions {
  int num_tables = 100;
  uint64_t seed = 42;
  double min_row_bytes = 100.0;
  double max_row_bytes = 200.0;
  double min_rows = 100'000.0;
  double max_rows = 2'000'000.0;
  /// Expected extra (non-spanning-tree) join edges per table; the spanning
  /// tree alone already makes every query connected.
  double extra_edge_fraction = 0.3;
};

/// Generates the random schema. Every table is reachable from every other
/// (a random spanning tree is always embedded), so any subset prefix forms
/// a valid join query. Selectivities follow the TPC-H foreign-key style:
/// 1 / max(row counts of the two tables).
Result<Catalog> BuildRandomCatalog(const RandomSchemaOptions& options);

/// A query joining `num_relations` tables of the random schema, chosen as a
/// connected subgraph (grown from table 0 through join edges) so that the
/// paper's "queries having increasing number of joins" sweep is valid.
Result<std::vector<TableId>> RandomQueryTables(const Catalog& catalog,
                                               int num_relations,
                                               uint64_t seed);

}  // namespace raqo::catalog

#endif  // RAQO_CATALOG_RANDOM_SCHEMA_H_
