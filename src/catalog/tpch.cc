#include "catalog/tpch.h"

#include "common/logging.h"

namespace raqo::catalog {

namespace {

/// Registers a table, CHECK-failing on error (the TPC-H definitions are
/// static and known-valid).
TableId MustAdd(Catalog& cat, const char* name, double rows,
                double row_bytes, std::vector<ColumnDef> columns) {
  TableDef def;
  def.name = name;
  def.row_count = rows;
  def.row_bytes = row_bytes;
  def.columns = std::move(columns);
  Result<TableId> r = cat.AddTable(std::move(def));
  RAQO_CHECK(r.ok()) << r.status().ToString();
  return *r;
}

void MustJoinOnColumns(Catalog& cat, TableId a, const char* col_a,
                       TableId b, const char* col_b) {
  Status s = cat.AddJoinOnColumns(a, col_a, b, col_b);
  RAQO_CHECK(s.ok()) << s.ToString();
}

}  // namespace

const char* TpchQueryName(TpchQuery query) {
  switch (query) {
    case TpchQuery::kQ12:
      return "Q12";
    case TpchQuery::kQ3:
      return "Q3";
    case TpchQuery::kQ2:
      return "Q2";
    case TpchQuery::kAll:
      return "All";
  }
  return "?";
}

Catalog BuildTpchCatalog(double scale_factor) {
  RAQO_CHECK(scale_factor > 0.0) << "scale factor must be positive";
  const double sf = scale_factor;
  Catalog cat;

  // Row counts per the TPC-H specification; average row widths
  // approximate the uncompressed logical widths; distinct counts of the
  // key columns follow the key domains, so the derived join
  // selectivities reproduce the benchmark's 1/|referenced| foreign-key
  // estimates.
  const TableId region =
      MustAdd(cat, "region", 5, 120, {{"r_regionkey", 5}});
  const TableId nation = MustAdd(cat, "nation", 25, 130,
                                 {{"n_nationkey", 25}, {"n_regionkey", 5}});
  const TableId supplier =
      MustAdd(cat, "supplier", 10'000 * sf, 145,
              {{"s_suppkey", 10'000 * sf}, {"s_nationkey", 25}});
  const TableId customer =
      MustAdd(cat, "customer", 150'000 * sf, 165,
              {{"c_custkey", 150'000 * sf}, {"c_nationkey", 25}});
  const TableId part =
      MustAdd(cat, "part", 200'000 * sf, 120, {{"p_partkey", 200'000 * sf}});
  const TableId partsupp =
      MustAdd(cat, "partsupp", 800'000 * sf, 145,
              {{"ps_partkey", 200'000 * sf}, {"ps_suppkey", 10'000 * sf}});
  // Non-key columns carry value ranges (uniformity-based range-filter
  // selectivities): totalprice in dollars, quantity in units, dates as
  // days since 1992-01-01 (the TPC-H date domain spans ~2,526 days).
  const TableId orders =
      MustAdd(cat, "orders", 1'500'000 * sf, 110,
              {{"o_orderkey", 1'500'000 * sf},
               {"o_custkey", 150'000 * sf},
               {"o_totalprice", 1'400'000 * sf, true, 850.0, 560'000.0},
               {"o_orderdate", 2'406, true, 0.0, 2'405.0}});
  const TableId lineitem =
      MustAdd(cat, "lineitem", 6'000'000 * sf, 130,
              {{"l_orderkey", 1'500'000 * sf},
               {"l_partkey", 200'000 * sf},
               {"l_suppkey", 10'000 * sf},
               {"l_quantity", 50, true, 1.0, 50.0},
               {"l_shipdate", 2'526, true, 0.0, 2'525.0}});

  // Foreign-key join edges; selectivities derive from the key columns'
  // distinct counts (1/max(ndv)).
  MustJoinOnColumns(cat, nation, "n_regionkey", region, "r_regionkey");
  MustJoinOnColumns(cat, supplier, "s_nationkey", nation, "n_nationkey");
  MustJoinOnColumns(cat, customer, "c_nationkey", nation, "n_nationkey");
  MustJoinOnColumns(cat, partsupp, "ps_partkey", part, "p_partkey");
  MustJoinOnColumns(cat, partsupp, "ps_suppkey", supplier, "s_suppkey");
  MustJoinOnColumns(cat, orders, "o_custkey", customer, "c_custkey");
  MustJoinOnColumns(cat, lineitem, "l_orderkey", orders, "o_orderkey");
  MustJoinOnColumns(cat, lineitem, "l_partkey", part, "p_partkey");
  MustJoinOnColumns(cat, lineitem, "l_suppkey", supplier, "s_suppkey");
  // The lineitem-partsupp edge joins on the composite (partkey, suppkey)
  // key, which column-level distinct counts cannot express; its
  // selectivity is given explicitly as 1/|partsupp|.
  RAQO_CHECK(cat.AddJoin(lineitem, partsupp, 1.0 / (800'000 * sf),
                         "l_partkey = ps_partkey and l_suppkey = ps_suppkey")
                 .ok());

  return cat;
}

Result<std::vector<TableId>> TpchQueryTables(const Catalog& catalog,
                                             TpchQuery query) {
  auto find = [&catalog](const char* name) { return catalog.FindTable(name); };
  switch (query) {
    case TpchQuery::kQ12: {
      RAQO_ASSIGN_OR_RETURN(TableId orders, find("orders"));
      RAQO_ASSIGN_OR_RETURN(TableId lineitem, find("lineitem"));
      return std::vector<TableId>{orders, lineitem};
    }
    case TpchQuery::kQ3: {
      RAQO_ASSIGN_OR_RETURN(TableId customer, find("customer"));
      RAQO_ASSIGN_OR_RETURN(TableId orders, find("orders"));
      RAQO_ASSIGN_OR_RETURN(TableId lineitem, find("lineitem"));
      return std::vector<TableId>{customer, orders, lineitem};
    }
    case TpchQuery::kQ2: {
      RAQO_ASSIGN_OR_RETURN(TableId part, find("part"));
      RAQO_ASSIGN_OR_RETURN(TableId supplier, find("supplier"));
      RAQO_ASSIGN_OR_RETURN(TableId partsupp, find("partsupp"));
      RAQO_ASSIGN_OR_RETURN(TableId nation, find("nation"));
      return std::vector<TableId>{part, supplier, partsupp, nation};
    }
    case TpchQuery::kAll:
      return catalog.AllTableIds();
  }
  return Status::InvalidArgument("unknown TPC-H query");
}

}  // namespace raqo::catalog
