#include "catalog/random_schema.h"

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"

namespace raqo::catalog {

Result<Catalog> BuildRandomCatalog(const RandomSchemaOptions& options) {
  if (options.num_tables < 1) {
    return Status::InvalidArgument("random schema needs at least one table");
  }
  if (options.min_row_bytes <= 0 || options.max_row_bytes < options.min_row_bytes ||
      options.min_rows <= 0 || options.max_rows < options.min_rows) {
    return Status::InvalidArgument("random schema bounds are inconsistent");
  }

  Rng rng(options.seed);
  Catalog cat;
  for (int i = 0; i < options.num_tables; ++i) {
    TableDef def;
    def.name = StrPrintf("t%03d", i);
    def.row_bytes = rng.Uniform(options.min_row_bytes, options.max_row_bytes);
    def.row_count = rng.Uniform(options.min_rows, options.max_rows);
    RAQO_ASSIGN_OR_RETURN(TableId id, cat.AddTable(std::move(def)));
    (void)id;
  }

  auto fk_like_selectivity = [&cat](TableId a, TableId b) {
    return 1.0 /
           std::max(cat.table(a).row_count, cat.table(b).row_count);
  };

  // Random spanning tree: table i joins a random earlier table.
  for (int i = 1; i < options.num_tables; ++i) {
    const auto j = static_cast<TableId>(rng.UniformInt(0, i - 1));
    const auto ti = static_cast<TableId>(i);
    RAQO_RETURN_IF_ERROR(cat.AddJoin(
        ti, j, fk_like_selectivity(ti, j),
        StrPrintf("t%03d.fk = t%03d.pk", i, j)));
  }
  // Extra random edges for a denser graph.
  const int extras = static_cast<int>(options.extra_edge_fraction *
                                      options.num_tables);
  for (int e = 0; e < extras && options.num_tables >= 2; ++e) {
    const auto a =
        static_cast<TableId>(rng.UniformInt(0, options.num_tables - 1));
    auto b = static_cast<TableId>(rng.UniformInt(0, options.num_tables - 1));
    if (a == b) continue;
    if (cat.join_graph().HasEdge(a, b)) continue;
    RAQO_RETURN_IF_ERROR(cat.AddJoin(a, b, fk_like_selectivity(a, b),
                                     StrPrintf("t%03d.x = t%03d.y", a, b)));
  }
  return cat;
}

Result<std::vector<TableId>> RandomQueryTables(const Catalog& catalog,
                                               int num_relations,
                                               uint64_t seed) {
  if (num_relations < 1 ||
      static_cast<size_t>(num_relations) > catalog.num_tables()) {
    return Status::InvalidArgument(
        "query relation count out of range for this catalog");
  }
  Rng rng(seed);
  std::vector<TableId> chosen = {0};
  std::vector<bool> in_query(catalog.num_tables(), false);
  in_query[0] = true;
  while (static_cast<int>(chosen.size()) < num_relations) {
    // Frontier: neighbors of the chosen set not yet included.
    std::vector<TableId> frontier;
    for (TableId t : chosen) {
      for (TableId n : catalog.join_graph().Neighbors(t)) {
        if (!in_query[static_cast<size_t>(n)]) frontier.push_back(n);
      }
    }
    std::sort(frontier.begin(), frontier.end());
    frontier.erase(std::unique(frontier.begin(), frontier.end()),
                   frontier.end());
    if (frontier.empty()) {
      return Status::FailedPrecondition(
          "join graph disconnected; cannot grow the query");
    }
    const auto pick = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(frontier.size()) - 1));
    chosen.push_back(frontier[pick]);
    in_query[static_cast<size_t>(frontier[pick])] = true;
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace raqo::catalog
