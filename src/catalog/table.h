#ifndef RAQO_CATALOG_TABLE_H_
#define RAQO_CATALOG_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace raqo::catalog {

/// Identifies a table inside one Catalog; dense, starting at 0.
using TableId = int32_t;

/// Sentinel for "no table".
inline constexpr TableId kInvalidTableId = -1;

/// Column-level statistics: the number of distinct values drives derived
/// join selectivities (the classic 1/max(ndv) estimate); the value range,
/// when present, drives range-filter selectivities under the uniformity
/// assumption.
struct ColumnDef {
  std::string name;
  double distinct_values = 0.0;
  /// Value range of the column; meaningful only when has_range is set.
  bool has_range = false;
  double min_value = 0.0;
  double max_value = 0.0;
};

/// Base-table statistics the optimizer and simulator need: cardinality,
/// average row width, and (optionally) per-column distinct counts. These
/// play the role of ANALYZE statistics in a real system.
struct TableDef {
  TableDef() = default;
  TableDef(std::string table_name, double rows, double bytes_per_row,
           std::vector<ColumnDef> column_stats = {})
      : name(std::move(table_name)),
        row_count(rows),
        row_bytes(bytes_per_row),
        columns(std::move(column_stats)) {}

  std::string name;
  /// Number of rows in the base table.
  double row_count = 0.0;
  /// Average bytes per row (uncompressed logical width).
  double row_bytes = 0.0;
  /// Column statistics; optional — join edges can also carry explicit
  /// selectivities.
  std::vector<ColumnDef> columns;

  /// Total logical size of the table in bytes.
  double total_bytes() const { return row_count * row_bytes; }
  /// Total logical size in GB (the unit used throughout the paper).
  double total_gb() const { return total_bytes() / (1024.0 * 1024.0 * 1024.0); }

  /// Looks a column up by name; nullptr when absent.
  const ColumnDef* FindColumn(const std::string& column_name) const {
    for (const ColumnDef& c : columns) {
      if (c.name == column_name) return &c;
    }
    return nullptr;
  }
};

/// Converts GB to bytes; the paper quotes all data sizes in GB/MB.
inline constexpr double GbToBytes(double gb) {
  return gb * 1024.0 * 1024.0 * 1024.0;
}
inline constexpr double MbToBytes(double mb) { return mb * 1024.0 * 1024.0; }
inline constexpr double BytesToGb(double bytes) {
  return bytes / (1024.0 * 1024.0 * 1024.0);
}

}  // namespace raqo::catalog

#endif  // RAQO_CATALOG_TABLE_H_
