#ifndef RAQO_CATALOG_TPCH_H_
#define RAQO_CATALOG_TPCH_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"

namespace raqo::catalog {

/// Well-known TPC-H evaluation queries used by the paper (Section VII):
/// Q12 (single join), Q3 (two joins), Q2 (three joins), and All (joining
/// every table in the schema).
enum class TpchQuery {
  kQ12,
  kQ3,
  kQ2,
  kAll,
};

/// Short label: "Q12", "Q3", "Q2", "All".
const char* TpchQueryName(TpchQuery query);

/// Builds the 8-table TPC-H schema with the benchmark's foreign-key join
/// edges; selectivities follow the classic 1/|referenced| rule so that a
/// key/foreign-key join keeps the fact side's cardinality. Row counts scale
/// linearly with `scale_factor` except the fixed nation/region tables.
/// The paper runs at scale factor 100 (lineitem ~ 77 GB).
Catalog BuildTpchCatalog(double scale_factor);

/// The relation set of an evaluation query, as table ids into `catalog`.
/// Fails if the catalog does not contain the TPC-H tables.
Result<std::vector<TableId>> TpchQueryTables(const Catalog& catalog,
                                             TpchQuery query);

}  // namespace raqo::catalog

#endif  // RAQO_CATALOG_TPCH_H_
