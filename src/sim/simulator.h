#ifndef RAQO_SIM_SIMULATOR_H_
#define RAQO_SIM_SIMULATOR_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "plan/cardinality.h"
#include "plan/plan_node.h"
#include "resource/pricing.h"
#include "sim/exec_model.h"

namespace raqo::sim {

/// Simulated execution detail of one join operator in a plan.
struct JoinExecutionDetail {
  std::string description;
  plan::JoinImpl impl = plan::JoinImpl::kSortMergeJoin;
  ExecParams params;
  JoinRunResult run;
  double left_gb = 0.0;
  double right_gb = 0.0;
};

/// Simulated end-to-end execution of a plan.
struct SimPlanResult {
  /// Total wall-clock seconds (joins execute sequentially at shuffle
  /// boundaries, each with its own resources).
  double seconds = 0.0;
  /// "Resources used" in the paper's Figure 2 sense: total memory times
  /// execution time, in TB * seconds.
  double tb_seconds = 0.0;
  /// Monetary cost under the given pricing model.
  double dollars = 0.0;
  /// Stages whose container startup was skipped because the previous
  /// stage ran with identical resources (container reuse).
  int reused_stages = 0;
  std::vector<JoinExecutionDetail> joins;
};

/// Execution-time options of RunPlan.
struct RunPlanOptions {
  /// When set, a join stage whose resource configuration equals the
  /// previous stage's reuses its containers: the stage startup (YARN
  /// allocation + JVM launch) is skipped. This is the trade-off the
  /// paper's research agenda raises: "if resources between operators do
  /// not change, containers can be reused", pulling against the gains of
  /// per-operator resource choices.
  bool reuse_containers = false;
};

/// Executes whole plan trees against the analytical execution model; the
/// stand-in for running a query on the Hive/Spark cluster. Each join runs
/// with the resources recorded on its plan node (a joint query/resource
/// plan) or with `default_params` when the node carries none.
class ExecutionSimulator {
 public:
  ExecutionSimulator(EngineProfile profile, const catalog::Catalog* catalog,
                     resource::PricingModel pricing = resource::PricingModel());

  const EngineProfile& profile() const { return profile_; }

  /// Simulates one join in isolation.
  Result<JoinRunResult> RunJoin(plan::JoinImpl impl, double left_bytes,
                                double right_bytes,
                                const ExecParams& params) const;

  /// Simulates a full plan. Intermediate-result sizes come from the
  /// cardinality estimator over the catalog's statistics.
  Result<SimPlanResult> RunPlan(const plan::PlanNode& plan,
                                const ExecParams& default_params,
                                const RunPlanOptions& options =
                                    RunPlanOptions());

 private:
  EngineProfile profile_;
  const catalog::Catalog* catalog_;
  resource::PricingModel pricing_;
  plan::CardinalityEstimator estimator_;
};

}  // namespace raqo::sim

#endif  // RAQO_SIM_SIMULATOR_H_
