#ifndef RAQO_SIM_PROFILE_RUNNER_H_
#define RAQO_SIM_PROFILE_RUNNER_H_

#include <vector>

#include "common/result.h"
#include "cost/cost_model.h"
#include "sim/engine_profile.h"

namespace raqo::sim {

/// The grid of data/resource points profile runs are collected over.
/// The paper trains its cost model on "SMJ and BHJ profile runs on Hive";
/// here the runs execute against the simulator.
struct ProfileGrid {
  std::vector<double> smaller_gb = {0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0};
  std::vector<double> container_gb = {2.0, 3.0, 4.0, 6.0, 8.0, 10.0};
  /// Covers the full parallelism range of the paper's default cluster
  /// (1..100 containers); a model fitted only on low container counts
  /// extrapolates poorly when the resource planner climbs beyond them.
  std::vector<int> containers = {5, 10, 20, 30, 40, 60, 80, 100};
  /// Sizes of the larger (probe/shuffled) relation in GB. Varied so the
  /// extended cost model learns the big side's contribution too.
  std::vector<double> larger_gb = {10.0, 30.0, 77.0};
};

/// Runs the grid for one operator implementation and collects training
/// samples. Grid points where the operator cannot run (BHJ out of memory)
/// are skipped, mirroring what profiling a real system would yield.
std::vector<cost::ProfileSample> CollectProfileSamples(
    const EngineProfile& profile, plan::JoinImpl impl,
    const ProfileGrid& grid);

/// Trains the SMJ/BHJ cost-model pair from simulator profile runs
/// (the reproduction's analogue of the paper's published coefficient
/// vectors, which are also available via cost::PaperHiveModels()).
Result<cost::JoinCostModels> TrainModelsFromSimulator(
    const EngineProfile& profile, const ProfileGrid& grid = ProfileGrid());

}  // namespace raqo::sim

#endif  // RAQO_SIM_PROFILE_RUNNER_H_
