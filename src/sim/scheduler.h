#ifndef RAQO_SIM_SCHEDULER_H_
#define RAQO_SIM_SCHEDULER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "plan/plan_node.h"
#include "sim/simulator.h"

namespace raqo::sim {

/// A snapshot of what the resource manager can grant *right now*.
struct ClusterAvailability {
  /// Largest container currently grantable, in GB.
  double max_container_gb = 10.0;
  /// Containers currently free.
  double free_containers = 100.0;
  /// Rate at which held containers drain back to the free pool, in
  /// containers per second (from observed job churn).
  double drain_rate_containers_per_s = 1.0;
};

/// What the scheduler decided to do with the job.
enum class ScheduleAction {
  /// The preferred (first) plan fits now; start it.
  kRunPrimary,
  /// An alternative plan completes earlier than waiting for the primary
  /// plan's resources; switch to it.
  kRunAlternative,
  /// Nothing fits now and waiting for the chosen plan's resources beats
  /// every plan that fits; queue.
  kWait,
};

const char* ScheduleActionName(ScheduleAction action);

/// The scheduler's verdict for one job.
struct ScheduleDecision {
  ScheduleAction action = ScheduleAction::kRunPrimary;
  /// Index into the candidate plan list of the plan to run.
  size_t plan_index = 0;
  /// Time the job must queue before its plan's peak demand fits.
  double wait_s = 0.0;
  /// Simulated execution time of the chosen plan.
  double run_s = 0.0;
  /// wait_s + run_s.
  double completion_s = 0.0;

  std::string ToString() const;
};

/// Answers the paper's "Interaction with DAG scheduler" question
/// (Section VIII): with RAQO, submitted jobs carry precise resource
/// requests — when the exact resources are not available, should the
/// scheduler delay the job or pick among multiple query/resource plan
/// alternatives? This scheduler minimizes expected completion time:
/// for every candidate joint plan it computes
///   completion = (time until the plan's peak demand fits) + (simulated
///                 execution time with the plan's own resources)
/// and picks the minimum; ties prefer the primary plan. Plans whose
/// container-size demand exceeds what the cluster can ever grant are
/// rejected outright.
class ResourceAwareScheduler {
 public:
  /// `catalog` must outlive the scheduler.
  ResourceAwareScheduler(EngineProfile profile,
                         const catalog::Catalog* catalog);

  /// Decides among candidate joint plans (each join node must carry its
  /// resource request; use RaqoPlanner outputs). `plans[0]` is the
  /// primary. Fails if no plan can ever run under `available`.
  Result<ScheduleDecision> Decide(
      const std::vector<const plan::PlanNode*>& plans,
      const ClusterAvailability& available);

 private:
  /// Peak concurrent demand of a joint plan: the largest per-operator
  /// container size and container count it requests.
  struct PeakDemand {
    double container_gb = 0.0;
    double containers = 0.0;
  };
  static Result<PeakDemand> PeakDemandOf(const plan::PlanNode& plan);

  ExecutionSimulator simulator_;
};

}  // namespace raqo::sim

#endif  // RAQO_SIM_SCHEDULER_H_
