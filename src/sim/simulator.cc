#include "sim/simulator.h"

#include <cmath>

#include "common/logging.h"

namespace raqo::sim {

ExecutionSimulator::ExecutionSimulator(EngineProfile profile,
                                       const catalog::Catalog* catalog,
                                       resource::PricingModel pricing)
    : profile_(std::move(profile)),
      catalog_(catalog),
      pricing_(pricing),
      estimator_(catalog) {
  RAQO_CHECK(catalog != nullptr);
}

Result<JoinRunResult> ExecutionSimulator::RunJoin(
    plan::JoinImpl impl, double left_bytes, double right_bytes,
    const ExecParams& params) const {
  return SimulateJoin(profile_, impl, left_bytes, right_bytes, params);
}

Result<SimPlanResult> ExecutionSimulator::RunPlan(
    const plan::PlanNode& plan, const ExecParams& default_params,
    const RunPlanOptions& options) {
  SimPlanResult result;
  Status failure = Status::OK();
  bool have_prev = false;
  ExecParams prev_params;

  plan.VisitJoins([&](const plan::PlanNode& join) {
    if (!failure.ok()) return;
    const plan::JoinInputStats stats = estimator_.JoinStats(join);

    ExecParams params = default_params;
    if (join.resources().has_value()) {
      params.container_size_gb = join.resources()->container_size_gb();
      params.num_containers = static_cast<int>(
          std::llround(join.resources()->num_containers()));
    }

    Result<JoinRunResult> run = SimulateJoin(
        profile_, join.impl(), stats.left.bytes(), stats.right.bytes(),
        params);
    if (!run.ok()) {
      failure = run.status();
      return;
    }

    // Container reuse: identical resources as the previous stage keep
    // the containers warm, so this stage's startup cost vanishes.
    if (options.reuse_containers && have_prev &&
        params.container_size_gb == prev_params.container_size_gb &&
        params.num_containers == prev_params.num_containers) {
      run->seconds -= run->breakdown.startup_s;
      run->breakdown.startup_s = 0.0;
      ++result.reused_stages;
    }
    have_prev = true;
    prev_params = params;

    JoinExecutionDetail detail;
    detail.description = join.ToString(catalog_);
    detail.impl = join.impl();
    detail.params = params;
    detail.run = *run;
    detail.left_gb = stats.left.gb();
    detail.right_gb = stats.right.gb();

    const double memory_gb =
        params.container_size_gb * static_cast<double>(params.num_containers);
    result.seconds += run->seconds;
    result.tb_seconds += memory_gb / 1024.0 * run->seconds;
    result.dollars += pricing_.Cost(
        resource::ResourceConfig(params.container_size_gb,
                                 static_cast<double>(params.num_containers)),
        run->seconds);
    result.joins.push_back(std::move(detail));
  });

  if (!failure.ok()) return failure;
  return result;
}

}  // namespace raqo::sim
