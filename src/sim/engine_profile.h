#ifndef RAQO_SIM_ENGINE_PROFILE_H_
#define RAQO_SIM_ENGINE_PROFILE_H_

#include <string>

namespace raqo::sim {

/// Calibration constants of the analytical big-data execution model.
///
/// The paper measured Hive 2.0.1 (on Tez/YARN) and SparkSQL 1.6.1 on a
/// 10-VM cluster; this reproduction replaces those systems with an
/// analytical simulator whose cost terms capture the same mechanics:
/// scan/decode, external sort with spill passes, all-to-all shuffle with
/// network congestion, small-side broadcast, in-memory hash build with an
/// out-of-memory boundary and a memory-pressure slowdown near it. The
/// constants below are calibrated so the simulator reproduces the paper's
/// reported switch-point structure (Figures 3, 4, 9); see EXPERIMENTS.md.
///
/// All throughputs are per-container, in MB/s.
struct EngineProfile {
  std::string name;

  /// Reading + decoding input bytes (columnar decode included).
  double scan_mb_s = 40.0;
  /// In-memory sort + serialization on the map side of a shuffle.
  double sort_mb_s = 30.0;
  /// Network throughput per container for shuffles, before congestion.
  double shuffle_mb_s = 60.0;
  /// Reduce-side merge + join throughput.
  double merge_mb_s = 45.0;
  /// Building the in-memory hash table of a broadcast join.
  double hash_build_mb_s = 70.0;
  /// Probing the hash table with the large side.
  double hash_probe_mb_s = 110.0;
  /// Disk write+read throughput for external-sort spill passes.
  double spill_mb_s = 50.0;

  /// Effective shuffle bandwidth is shuffle_mb_s divided by
  /// (1 + shuffle_congestion_per_container * nc): an all-to-all shuffle
  /// opens O(nc^2) flows, so per-flow efficiency degrades with scale.
  double shuffle_congestion_per_container = 0.004;

  /// Broadcast distribution. In Hive/Tez every container fetches the
  /// small-side hash table from a fixed number of HDFS replicas
  /// (`broadcast_fanout` parallel servers of broadcast_mb_s each), so the
  /// broadcast time grows with nc. Spark 1.6's torrent broadcast instead
  /// spreads chunks peer-to-peer and behaves logarithmically in nc
  /// (`torrent_broadcast`).
  double broadcast_mb_s = 80.0;
  double broadcast_fanout = 3.0;
  bool torrent_broadcast = false;

  /// Fraction of a container usable as sort buffer on the map side.
  double memory_fraction = 0.45;
  /// Largest in-memory build side of a broadcast join, as a multiple of
  /// the container size: build feasible iff ss <= factor * cs. Hive
  /// compares the on-disk (compressed columnar) size against the
  /// container budget, so the factor can exceed 1.
  double build_capacity_factor = 1.14;
  /// Memory-pressure slowdown of the hash join as the build side fills
  /// the capacity. JVM-style engines degrade once the heap occupancy
  /// crosses a GC threshold and then saturate, so the factor is a
  /// sigmoid of the occupancy ratio r = ss / capacity:
  ///   factor = 1 + amplitude / (1 + exp(-steepness * (r - midpoint)))
  double pressure_amplitude = 1.15;
  double pressure_midpoint = 0.55;
  double pressure_steepness = 20.0;

  /// Fixed cost of launching a stage.
  double stage_startup_s = 2.0;
  /// Additional launch cost per container in a stage.
  double container_launch_s = 0.12;
  /// Extra cost for each additional reduce wave beyond the first.
  double wave_overhead_s = 1.5;

  /// Hive-style automatic reducer count: one reducer per this many MB of
  /// shuffled data.
  double bytes_per_reducer_mb = 256.0;
  int max_auto_reducers = 1009;

  /// External-sort merge fan-in (how many runs one merge pass combines).
  int merge_fan_in = 10;

  /// The engine's *default* rule for picking the broadcast join: build
  /// side below this threshold (both Hive and SparkSQL default to 10 MB).
  double default_bhj_threshold_mb = 10.0;

  /// Calibrated Hive 2.0.1-on-Tez profile.
  static EngineProfile Hive();
  /// Calibrated SparkSQL 1.6.1 profile (executor model, torrent
  /// broadcast, per-task shares of executor memory => much smaller
  /// broadcast capacity, MB-scale switch points as in Figure 9(b)).
  static EngineProfile Spark();
};

}  // namespace raqo::sim

#endif  // RAQO_SIM_ENGINE_PROFILE_H_
