#include "sim/scheduler.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"

namespace raqo::sim {

const char* ScheduleActionName(ScheduleAction action) {
  switch (action) {
    case ScheduleAction::kRunPrimary:
      return "run-primary";
    case ScheduleAction::kRunAlternative:
      return "run-alternative";
    case ScheduleAction::kWait:
      return "wait";
  }
  return "?";
}

std::string ScheduleDecision::ToString() const {
  return StrPrintf("%s plan#%zu wait=%.1fs run=%.1fs completion=%.1fs",
                   ScheduleActionName(action), plan_index, wait_s, run_s,
                   completion_s);
}

ResourceAwareScheduler::ResourceAwareScheduler(
    EngineProfile profile, const catalog::Catalog* catalog)
    : simulator_(std::move(profile), catalog) {}

Result<ResourceAwareScheduler::PeakDemand>
ResourceAwareScheduler::PeakDemandOf(const plan::PlanNode& plan) {
  PeakDemand peak;
  bool missing = false;
  plan.VisitJoins([&](const plan::PlanNode& join) {
    if (!join.resources().has_value()) {
      missing = true;
      return;
    }
    peak.container_gb =
        std::max(peak.container_gb, join.resources()->container_size_gb());
    peak.containers =
        std::max(peak.containers, join.resources()->num_containers());
  });
  if (missing) {
    return Status::FailedPrecondition(
        "plan has joins without resource requests; run resource planning "
        "first");
  }
  if (plan.NumJoins() == 0) {
    return Status::InvalidArgument("plan has no join operators");
  }
  return peak;
}

Result<ScheduleDecision> ResourceAwareScheduler::Decide(
    const std::vector<const plan::PlanNode*>& plans,
    const ClusterAvailability& available) {
  if (plans.empty()) {
    return Status::InvalidArgument("no candidate plans");
  }
  if (available.drain_rate_containers_per_s <= 0.0) {
    return Status::InvalidArgument("drain rate must be positive");
  }

  bool found = false;
  ScheduleDecision best;
  best.completion_s = std::numeric_limits<double>::infinity();

  for (size_t i = 0; i < plans.size(); ++i) {
    if (plans[i] == nullptr) {
      return Status::InvalidArgument("null candidate plan");
    }
    RAQO_ASSIGN_OR_RETURN(PeakDemand peak, PeakDemandOf(*plans[i]));
    // Container *size* cannot be waited into existence: the grantable
    // container size is a property of the machines still free.
    if (peak.container_gb > available.max_container_gb + 1e-9) continue;

    const double deficit = peak.containers - available.free_containers;
    const double wait =
        deficit > 0.0 ? deficit / available.drain_rate_containers_per_s
                      : 0.0;

    ExecParams defaults;  // every join carries resources; defaults unused
    Result<SimPlanResult> run = simulator_.RunPlan(*plans[i], defaults);
    if (!run.ok()) {
      if (run.status().IsResourceExhausted()) continue;  // cannot run
      return run.status();
    }
    const double completion = wait + run->seconds;
    if (completion < best.completion_s) {
      found = true;
      best.plan_index = i;
      best.wait_s = wait;
      best.run_s = run->seconds;
      best.completion_s = completion;
    }
  }

  if (!found) {
    return Status::ResourceExhausted(
        "no candidate plan can run under the current availability");
  }
  if (best.plan_index == 0 && best.wait_s == 0.0) {
    best.action = ScheduleAction::kRunPrimary;
  } else if (best.wait_s > 0.0) {
    best.action = ScheduleAction::kWait;
  } else {
    best.action = ScheduleAction::kRunAlternative;
  }
  return best;
}

}  // namespace raqo::sim
