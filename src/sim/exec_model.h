#ifndef RAQO_SIM_EXEC_MODEL_H_
#define RAQO_SIM_EXEC_MODEL_H_

#include <string>

#include "common/result.h"
#include "plan/plan_node.h"
#include "sim/engine_profile.h"

namespace raqo::sim {

/// Resources (and tuning) a simulated join stage runs with.
struct ExecParams {
  /// YARN container size in GB.
  double container_size_gb = 4.0;
  /// Maximum concurrent containers.
  int num_containers = 10;
  /// Number of reduce tasks for the shuffle; 0 = engine auto rule
  /// (Hive: shuffled bytes / bytes_per_reducer).
  int num_reducers = 0;
};

/// Per-phase time breakdown of one simulated join, in seconds.
struct StageBreakdown {
  double scan_s = 0.0;
  double sort_s = 0.0;
  double spill_s = 0.0;
  double shuffle_s = 0.0;
  double merge_s = 0.0;
  double broadcast_s = 0.0;
  double build_s = 0.0;
  double probe_s = 0.0;
  double startup_s = 0.0;

  double Total() const {
    return scan_s + sort_s + spill_s + shuffle_s + merge_s + broadcast_s +
           build_s + probe_s + startup_s;
  }
};

/// Result of simulating one join execution.
struct JoinRunResult {
  /// End-to-end stage time in seconds (excluding output materialization,
  /// as the paper does).
  double seconds = 0.0;
  StageBreakdown breakdown;
  /// Memory-pressure slowdown applied to the hash join (1 = none).
  double pressure_factor = 1.0;
  /// Reduce tasks actually used.
  int reducers = 0;

  std::string ToString() const;
};

/// Auto reducer count for `shuffled_mb` under `profile`'s rule.
int AutoReducerCount(const EngineProfile& profile, double shuffled_mb);

/// Simulates one join of `left_bytes` x `right_bytes` with the given
/// implementation and resources. Returns ResourceExhausted when a
/// broadcast build side exceeds the container's capacity (the OOM the
/// paper observes for BHJ under small containers), and InvalidArgument
/// for non-positive resources.
Result<JoinRunResult> SimulateJoin(const EngineProfile& profile,
                                   plan::JoinImpl impl, double left_bytes,
                                   double right_bytes,
                                   const ExecParams& params);

}  // namespace raqo::sim

#endif  // RAQO_SIM_EXEC_MODEL_H_
