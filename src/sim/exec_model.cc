#include "sim/exec_model.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace raqo::sim {

namespace {

constexpr double kMb = 1024.0 * 1024.0;

double BytesToMb(double bytes) { return bytes / kMb; }

/// Number of merge passes an external sort needs for `data_mb` with a
/// `buffer_mb` sort buffer and the profile's merge fan-in. Zero when the
/// data fits in the buffer (no spill).
int SpillPasses(const EngineProfile& profile, double data_mb,
                double buffer_mb) {
  if (data_mb <= buffer_mb) return 0;
  const double runs = std::ceil(data_mb / buffer_mb);
  // Each pass merges fan_in runs into one.
  int passes = 0;
  double remaining = runs;
  while (remaining > 1.0) {
    remaining = std::ceil(remaining / profile.merge_fan_in);
    ++passes;
  }
  return passes;
}

double StageStartupSeconds(const EngineProfile& profile, int containers) {
  return profile.stage_startup_s +
         profile.container_launch_s * static_cast<double>(containers);
}

}  // namespace

std::string JoinRunResult::ToString() const {
  return StrPrintf(
      "%.1fs (scan %.1f sort %.1f spill %.1f shuffle %.1f merge %.1f "
      "bcast %.1f build %.1f probe %.1f startup %.1f; pressure %.2f, "
      "%d reducers)",
      seconds, breakdown.scan_s, breakdown.sort_s, breakdown.spill_s,
      breakdown.shuffle_s, breakdown.merge_s, breakdown.broadcast_s,
      breakdown.build_s, breakdown.probe_s, breakdown.startup_s,
      pressure_factor, reducers);
}

int AutoReducerCount(const EngineProfile& profile, double shuffled_mb) {
  const int count =
      static_cast<int>(std::ceil(shuffled_mb / profile.bytes_per_reducer_mb));
  return std::clamp(count, 1, profile.max_auto_reducers);
}

Result<JoinRunResult> SimulateJoin(const EngineProfile& profile,
                                   plan::JoinImpl impl, double left_bytes,
                                   double right_bytes,
                                   const ExecParams& params) {
  if (params.container_size_gb <= 0.0 || params.num_containers <= 0) {
    return Status::InvalidArgument("resources must be positive");
  }
  if (left_bytes < 0.0 || right_bytes < 0.0) {
    return Status::InvalidArgument("input sizes must be non-negative");
  }
  if (params.num_reducers < 0) {
    return Status::InvalidArgument("reducer count must be non-negative");
  }

  const double cs = params.container_size_gb;
  const double nc = static_cast<double>(params.num_containers);
  const double small_mb = BytesToMb(std::min(left_bytes, right_bytes));
  const double big_mb = BytesToMb(std::max(left_bytes, right_bytes));
  const double both_mb = small_mb + big_mb;

  JoinRunResult result;
  StageBreakdown& b = result.breakdown;

  if (impl == plan::JoinImpl::kSortMergeJoin) {
    // --- Shuffle sort-merge join: both sides are scanned, sorted (with
    // external-sort spills when partitions exceed the sort buffer),
    // shuffled all-to-all, and merge-joined on the reduce side.
    const int reducers = params.num_reducers > 0
                             ? params.num_reducers
                             : AutoReducerCount(profile, both_mb);
    result.reducers = reducers;

    // Map side: scan + sort both inputs.
    b.scan_s = both_mb / (nc * profile.scan_mb_s);
    b.sort_s = both_mb / (nc * profile.sort_mb_s);

    // External-sort spills: each reduce partition must be sorted; the
    // buffer is a fraction of the container.
    const double partition_mb = both_mb / static_cast<double>(reducers);
    const double buffer_mb = cs * 1024.0 * profile.memory_fraction;
    const int passes = SpillPasses(profile, partition_mb, buffer_mb);
    if (passes > 0) {
      b.spill_s =
          static_cast<double>(passes) * both_mb / (nc * profile.spill_mb_s);
    }

    // Shuffle with congestion: all-to-all traffic degrades per-container
    // bandwidth as the cluster grows.
    const double shuffle_eff =
        profile.shuffle_mb_s /
        (1.0 + profile.shuffle_congestion_per_container * nc);
    b.shuffle_s = both_mb / (nc * shuffle_eff);

    // Reduce side: parallelism is capped by the reducer count.
    const double reduce_parallel = std::min(nc, static_cast<double>(reducers));
    b.merge_s = both_mb / (reduce_parallel * profile.merge_mb_s);

    // Two stages (map, reduce) plus extra reduce waves.
    const int waves = static_cast<int>(
        std::ceil(static_cast<double>(reducers) / nc));
    b.startup_s = 2.0 * StageStartupSeconds(profile, params.num_containers) +
                  static_cast<double>(std::max(0, waves - 1)) *
                      profile.wave_overhead_s;
  } else {
    // --- Broadcast hash join: the small side is broadcast to every
    // container and built into an in-memory hash table; the big side is
    // scanned in place and probed (no shuffle of the big side).
    const double small_gb = small_mb / 1024.0;
    const double capacity_gb = cs * profile.build_capacity_factor;
    if (small_gb > capacity_gb) {
      return Status::ResourceExhausted(StrPrintf(
          "broadcast build side %.2f GB exceeds capacity %.2f GB of a "
          "%.2f GB container",
          small_gb, capacity_gb, cs));
    }
    // Memory pressure: GC-style slowdown once the build side crosses the
    // occupancy threshold, saturating near capacity (sigmoid in r).
    const double r = small_gb / capacity_gb;
    result.pressure_factor =
        1.0 + profile.pressure_amplitude /
                  (1.0 + std::exp(-profile.pressure_steepness *
                                  (r - profile.pressure_midpoint)));
    result.reducers = 0;  // no shuffle stage

    // Small side scan (parallelism limited by its split count).
    const double small_splits = std::max(1.0, std::ceil(small_mb / 256.0));
    b.scan_s = small_mb / (std::min(nc, small_splits) * profile.scan_mb_s);

    // Distribution of the build side to every container.
    if (profile.torrent_broadcast) {
      b.broadcast_s = small_mb / profile.broadcast_mb_s *
                      std::log2(nc + 1.0);
    } else {
      b.broadcast_s =
          small_mb * nc / (profile.broadcast_fanout * profile.broadcast_mb_s);
    }

    // Every container builds its own table; pressure slows the build and
    // the probe.
    b.build_s =
        small_mb / profile.hash_build_mb_s * result.pressure_factor;
    b.probe_s = (big_mb / (nc * profile.scan_mb_s) +
                 big_mb / (nc * profile.hash_probe_mb_s)) *
                result.pressure_factor;

    b.startup_s = 2.0 * StageStartupSeconds(profile, params.num_containers);
  }

  result.seconds = b.Total();
  return result;
}

}  // namespace raqo::sim
