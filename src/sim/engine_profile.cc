#include "sim/engine_profile.h"

namespace raqo::sim {

EngineProfile EngineProfile::Hive() {
  EngineProfile p;
  p.name = "hive";
  // Defaults in the struct definition are the Hive calibration.
  return p;
}

EngineProfile EngineProfile::Spark() {
  EngineProfile p;
  p.name = "spark";
  // Spark 1.6 keeps data deserialized longer and pipelines better.
  p.scan_mb_s = 55.0;
  p.sort_mb_s = 40.0;
  p.shuffle_mb_s = 70.0;
  p.merge_mb_s = 60.0;
  p.hash_build_mb_s = 60.0;
  p.hash_probe_mb_s = 130.0;
  p.spill_mb_s = 55.0;
  // Torrent broadcast: logarithmic in cluster size.
  p.torrent_broadcast = true;
  p.broadcast_mb_s = 90.0;
  // Executor memory is shared across concurrent tasks and the block
  // manager; only a small per-task share can hold a broadcast relation.
  // This is why Spark's switch points sit in the hundreds of MB
  // (Figure 9(b)) while Hive's sit at several GB (Figure 9(a)).
  p.build_capacity_factor = 0.13;
  p.pressure_amplitude = 1.2;
  p.pressure_midpoint = 0.5;
  p.pressure_steepness = 15.0;
  p.stage_startup_s = 0.8;       // executors are reused, no per-stage YARN
  p.container_launch_s = 0.02;   // container allocation
  p.bytes_per_reducer_mb = 128.0;
  p.max_auto_reducers = 2000;
  return p;
}

}  // namespace raqo::sim
