#include "sim/profile_runner.h"

#include "catalog/table.h"
#include "sim/exec_model.h"

namespace raqo::sim {

std::vector<cost::ProfileSample> CollectProfileSamples(
    const EngineProfile& profile, plan::JoinImpl impl,
    const ProfileGrid& grid) {
  std::vector<cost::ProfileSample> samples;
  for (double ss : grid.smaller_gb) {
    for (double ls : grid.larger_gb) {
      if (ls < ss) continue;  // ss is the smaller side by definition
      for (double cs : grid.container_gb) {
        for (int nc : grid.containers) {
          ExecParams params;
          params.container_size_gb = cs;
          params.num_containers = nc;
          Result<JoinRunResult> run =
              SimulateJoin(profile, impl, catalog::GbToBytes(ss),
                           catalog::GbToBytes(ls), params);
          if (!run.ok()) continue;  // e.g. BHJ out of memory here
          cost::ProfileSample sample;
          sample.features.smaller_gb = ss;
          sample.features.larger_gb = ls;
          sample.features.container_size_gb = cs;
          sample.features.num_containers = static_cast<double>(nc);
          sample.seconds = run->seconds;
          samples.push_back(sample);
        }
      }
    }
  }
  return samples;
}

Result<cost::JoinCostModels> TrainModelsFromSimulator(
    const EngineProfile& profile, const ProfileGrid& grid) {
  const std::vector<cost::ProfileSample> smj_samples =
      CollectProfileSamples(profile, plan::JoinImpl::kSortMergeJoin, grid);
  const std::vector<cost::ProfileSample> bhj_samples =
      CollectProfileSamples(profile, plan::JoinImpl::kBroadcastHashJoin,
                            grid);
  RAQO_ASSIGN_OR_RETURN(
      cost::OperatorCostModel smj,
      cost::OperatorCostModel::Train("smj-" + profile.name, smj_samples));
  RAQO_ASSIGN_OR_RETURN(
      cost::OperatorCostModel bhj,
      cost::OperatorCostModel::Train("bhj-" + profile.name, bhj_samples));
  return cost::JoinCostModels{std::move(smj), std::move(bhj)};
}

}  // namespace raqo::sim
