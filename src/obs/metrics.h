#ifndef RAQO_OBS_METRICS_H_
#define RAQO_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace raqo::obs {

/// A monotonically increasing counter. Add() is one relaxed atomic
/// add — safe to call from any number of threads, no lock ever taken.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A last-write-wins instantaneous value (cache sizes, worker counts).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper bounds in
/// ascending order; values above the last bound land in an implicit
/// overflow bucket, so there are bounds.size() + 1 buckets. Record() is
/// a branchless-ish scan over a handful of bounds plus three relaxed
/// atomic ops — no lock on the hot path; Snapshot readers see a
/// point-in-time view per bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double value) {
    size_t b = 0;
    while (b < bounds_.size() && value > bounds_[b]) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds.size() + 1 entries (last = overflow).
  std::vector<int64_t> BucketCounts() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket bounds for latency histograms, in microseconds:
/// 1-2-5 decades from 1 us to 1 s.
const std::vector<double>& DefaultLatencyBoundsUs();

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<int64_t> counts;  ///< bounds.size() + 1 (last = overflow)
  int64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Owns named metrics. Registration (GetCounter & friends) takes a
/// mutex once per call site — instrumentation holds the returned pointer
/// in a function-local static, so the steady-state hot path is only the
/// metric's own relaxed atomics. Metric objects are never destroyed or
/// moved while the registry lives, so handed-out pointers stay valid
/// across Reset()/Snapshot().
///
/// The `enabled` flag is advisory: instrumentation sites check it (one
/// relaxed load via MetricsOn()) before touching clocks or metrics, which
/// is what makes the disabled configuration near-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Finds or creates the named metric. For histograms, `bounds` is used
  /// only on first creation; later calls with the same name return the
  /// existing histogram unchanged.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(
      const std::string& name,
      const std::vector<double>& bounds = DefaultLatencyBoundsUs());

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric's value. Registered metric objects (and any
  /// pointers instrumentation holds to them) stay valid.
  void ResetAll();

 private:
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry the built-in instrumentation records into.
/// Enabled by default (counters are cheap); disable with
/// DefaultMetrics().set_enabled(false) to strip even that cost.
MetricsRegistry& DefaultMetrics();

/// One relaxed atomic load; the gate every instrumentation site checks
/// before doing any metrics work.
inline bool MetricsOn() { return DefaultMetrics().enabled(); }

}  // namespace raqo::obs

#endif  // RAQO_OBS_METRICS_H_
