#include "obs/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace raqo::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  RAQO_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBoundsUs() {
  static const std::vector<double>* bounds = new std::vector<double>{
      1,    2,    5,    10,    20,    50,    100,    200,    500,
      1000, 2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000,
      1000000};
  return *bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->Value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->Value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = histogram->bounds();
    h.counts = histogram->BucketCounts();
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    out.histograms.push_back(std::move(h));
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& DefaultMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace raqo::obs
