#include "obs/json.h"

#include <set>

#include "common/strings.h"

namespace raqo::obs {

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += StrPrintf("    \"%s\": %lld",
                     JsonEscape(snapshot.counters[i].first).c_str(),
                     static_cast<long long>(snapshot.counters[i].second));
  }
  out += "\n  },\n  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += StrPrintf("    \"%s\": %s",
                     JsonEscape(snapshot.gauges[i].first).c_str(),
                     JsonNumber(snapshot.gauges[i].second).c_str());
  }
  out += "\n  },\n  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    out += (i == 0 ? "\n" : ",\n");
    out += StrPrintf("    \"%s\": {\"count\": %lld, \"sum\": %s, "
                     "\"buckets\": [",
                     JsonEscape(h.name).c_str(),
                     static_cast<long long>(h.count),
                     JsonNumber(h.sum).c_str());
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out += ", ";
      const std::string le =
          b < h.bounds.size() ? JsonNumber(h.bounds[b]) : "\"inf\"";
      out += StrPrintf("{\"le\": %s, \"count\": %lld}", le.c_str(),
                       static_cast<long long>(h.counts[b]));
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string SpansToChromeTraceJson(const std::vector<FinishedSpan>& spans) {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  // Thread-name metadata so the trace UI labels worker rows.
  std::set<uint32_t> tids;
  for (const FinishedSpan& span : spans) tids.insert(span.tid);
  for (const uint32_t tid : tids) {
    if (!first) out += ",";
    first = false;
    out += StrPrintf(
        "\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"tid\": %u, \"args\": {\"name\": \"raqo-thread-%u\"}}",
        tid, tid);
  }
  for (const FinishedSpan& span : spans) {
    if (!first) out += ",";
    first = false;
    out += StrPrintf(
        "\n  {\"name\": \"%s\", \"cat\": \"raqo\", \"ph\": \"X\", "
        "\"ts\": %s, \"dur\": %s, \"pid\": 1, \"tid\": %u, \"args\": "
        "{\"span_id\": %llu, \"parent_id\": %llu",
        JsonEscape(span.name).c_str(), JsonNumber(span.start_us).c_str(),
        JsonNumber(span.dur_us).c_str(), span.tid,
        static_cast<unsigned long long>(span.id),
        static_cast<unsigned long long>(span.parent_id));
    for (const SpanAttr& attr : span.attrs) {
      out += StrPrintf(", \"%s\": ", JsonEscape(attr.key).c_str());
      if (attr.quoted) {
        out += '"';
        out += JsonEscape(attr.value);
        out += '"';
      } else {
        out += attr.value;
      }
    }
    out += "}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

}  // namespace raqo::obs
