#include "obs/trace.h"

#include <utility>

#include "common/strings.h"

namespace raqo::obs {

namespace {

/// Stable small thread ids: assigned in order of each thread's first
/// span, so trace rows group naturally per worker.
uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Per-thread stack of open spans. Spans are RAII-scoped, so the stack
/// is LIFO per thread; frames carry the owning tracer so independent
/// tracers nest independently.
struct Frame {
  const Tracer* tracer;
  uint64_t id;
};
thread_local std::vector<Frame> g_open_spans;

uint64_t InnermostOpenSpan(const Tracer* tracer) {
  for (auto it = g_open_spans.rbegin(); it != g_open_spans.rend(); ++it) {
    if (it->tracer == tracer) return it->id;
  }
  return 0;
}

void PopOpenSpan(const Tracer* tracer, uint64_t id) {
  for (auto it = g_open_spans.rbegin(); it != g_open_spans.rend(); ++it) {
    if (it->tracer == tracer && it->id == id) {
      g_open_spans.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_), data_(std::move(other.data_)) {
  other.tracer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    data_ = std::move(other.data_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::SetAttr(const char* key, const std::string& value) {
  if (tracer_ == nullptr) return;
  data_.attrs.push_back(SpanAttr{key, value, /*quoted=*/true});
}

void Span::SetAttr(const char* key, const char* value) {
  SetAttr(key, std::string(value));
}

void Span::SetAttr(const char* key, int64_t value) {
  if (tracer_ == nullptr) return;
  data_.attrs.push_back(
      SpanAttr{key, std::to_string(value), /*quoted=*/false});
}

void Span::SetAttr(const char* key, double value) {
  if (tracer_ == nullptr) return;
  data_.attrs.push_back(
      SpanAttr{key, StrPrintf("%.6g", value), /*quoted=*/false});
}

void Span::End() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  data_.dur_us = tracer->NowUs() - data_.start_us;
  PopOpenSpan(tracer, data_.id);
  tracer->Finish(std::move(data_));
}

Tracer::Tracer(TracerOptions options)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(options.ring_capacity < 1 ? 1 : options.ring_capacity) {}

double Tracer::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Span Tracer::StartSpan(const char* name) {
  Span span;
  if (!enabled()) return span;
  span.tracer_ = this;
  span.data_.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.data_.parent_id = InnermostOpenSpan(this);
  span.data_.tid = CurrentThreadId();
  span.data_.name = name;
  span.data_.start_us = NowUs();
  g_open_spans.push_back(Frame{this, span.data_.id});
  return span;
}

void Tracer::Finish(FinishedSpan&& span) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[head_] = std::move(span);
    head_ = (head_ + 1) % capacity_;
  }
}

std::vector<FinishedSpan> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FinishedSpan> out;
  out.reserve(ring_.size());
  // Once wrapped, head_ points at the oldest element.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

int64_t Tracer::total_finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

int64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - static_cast<int64_t>(ring_.size());
}

Tracer& DefaultTracer() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

}  // namespace raqo::obs
