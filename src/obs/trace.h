#ifndef RAQO_OBS_TRACE_H_
#define RAQO_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace raqo::obs {

/// One span attribute, pre-rendered to its JSON form. `quoted` is false
/// for numeric values, which are emitted as JSON numbers.
struct SpanAttr {
  std::string key;
  std::string value;
  bool quoted = true;
};

/// A completed span as stored in the tracer's ring buffer.
struct FinishedSpan {
  /// Process-unique id (from one atomic counter, so ids are stable under
  /// any thread interleaving; 0 is never issued).
  uint64_t id = 0;
  /// Id of the enclosing span on the same thread, 0 for roots.
  uint64_t parent_id = 0;
  /// Small stable per-thread id (assignment order of first span use).
  uint32_t tid = 0;
  std::string name;
  /// Microseconds since the tracer's construction (its epoch).
  double start_us = 0.0;
  double dur_us = 0.0;
  std::vector<SpanAttr> attrs;
};

class Tracer;

/// RAII span handle returned by Tracer::StartSpan. When the tracer is
/// disabled the handle is inert: every member is a no-op, so call sites
/// need no branches of their own. A recording span finishes (computes
/// its duration, pops the nesting stack, lands in the ring buffer) at
/// End() or destruction, whichever comes first, and must do so on the
/// thread that started it — that is what keeps the per-thread nesting
/// stack LIFO.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  /// True when attached to an enabled tracer (attributes will be kept).
  bool recording() const { return tracer_ != nullptr; }
  uint64_t id() const { return data_.id; }

  void SetAttr(const char* key, const std::string& value);
  void SetAttr(const char* key, const char* value);
  void SetAttr(const char* key, int64_t value);
  void SetAttr(const char* key, double value);

  /// Finishes the span now; further calls (and destruction) are no-ops.
  void End();

 private:
  friend class Tracer;
  Tracer* tracer_ = nullptr;
  FinishedSpan data_;
};

struct TracerOptions {
  /// Completed spans kept; when full, the oldest span is overwritten
  /// (the drop is counted). Bounded so tracing a long run cannot exhaust
  /// memory.
  size_t ring_capacity = 1 << 16;
};

/// Produces structured, nested spans into a bounded ring buffer.
/// StartSpan when disabled is one relaxed atomic load returning an inert
/// handle; when enabled it is one clock read plus a thread-local stack
/// push. Finishing takes a short mutex-protected ring append (spans
/// finish orders of magnitude less often than metrics tick). Disabled by
/// default.
class Tracer {
 public:
  explicit Tracer(TracerOptions options = TracerOptions());
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Starts a span nested under the calling thread's innermost open span
  /// of this tracer (if any).
  Span StartSpan(const char* name);

  /// Completed spans, oldest first. A point-in-time copy.
  std::vector<FinishedSpan> Snapshot() const;

  /// Drops all buffered spans and the drop counter.
  void Clear();

  /// Spans ever finished (including ones since overwritten).
  int64_t total_finished() const;
  /// Spans overwritten because the ring was full.
  int64_t dropped() const;

  /// Microseconds since this tracer's construction.
  double NowUs() const;

 private:
  friend class Span;
  void Finish(FinishedSpan&& span);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  std::chrono::steady_clock::time_point epoch_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<FinishedSpan> ring_;
  size_t head_ = 0;  ///< next overwrite position once the ring is full
  int64_t total_ = 0;
};

/// The process-wide tracer the built-in instrumentation records into.
/// Disabled by default; flip on around the region of interest and export
/// with SpansToChromeTraceJson (obs/json.h).
Tracer& DefaultTracer();

/// One relaxed atomic load; the gate every instrumentation site checks
/// before creating spans.
inline bool TracingOn() { return DefaultTracer().enabled(); }

}  // namespace raqo::obs

#endif  // RAQO_OBS_TRACE_H_
