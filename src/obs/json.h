#ifndef RAQO_OBS_JSON_H_
#define RAQO_OBS_JSON_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace raqo::obs {

/// The generic JSON primitives live in common/json.h so wire-facing code
/// (the planning server's protocol) can use them without depending on
/// the observability library; re-exported here for source compatibility.
using ::raqo::JsonEscape;
using ::raqo::JsonNumber;
using ::raqo::WriteTextFile;

/// Metrics snapshot as a JSON document:
/// {"counters": {...}, "gauges": {...},
///  "histograms": {name: {"count","sum","buckets":[{"le","count"},...]}}}
/// The overflow bucket's bound is the string "inf".
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// Spans as a Chrome trace_event JSON document — loadable directly in
/// chrome://tracing and https://ui.perfetto.dev. Every span becomes one
/// complete ("ph":"X") event with its attributes (plus span/parent ids)
/// under "args"; thread names are emitted as metadata events so workers
/// are labeled in the UI.
std::string SpansToChromeTraceJson(const std::vector<FinishedSpan>& spans);

}  // namespace raqo::obs

#endif  // RAQO_OBS_JSON_H_
