#ifndef RAQO_OBS_JSON_H_
#define RAQO_OBS_JSON_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace raqo::obs {

/// Escapes a string for embedding inside JSON double quotes.
std::string JsonEscape(std::string_view s);

/// Renders a double as a JSON number ("null" for non-finite values,
/// which JSON cannot represent).
std::string JsonNumber(double v);

/// Metrics snapshot as a JSON document:
/// {"counters": {...}, "gauges": {...},
///  "histograms": {name: {"count","sum","buckets":[{"le","count"},...]}}}
/// The overflow bucket's bound is the string "inf".
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// Spans as a Chrome trace_event JSON document — loadable directly in
/// chrome://tracing and https://ui.perfetto.dev. Every span becomes one
/// complete ("ph":"X") event with its attributes (plus span/parent ids)
/// under "args"; thread names are emitted as metadata events so workers
/// are labeled in the UI.
std::string SpansToChromeTraceJson(const std::vector<FinishedSpan>& spans);

/// Writes `content` to `path` (overwrite).
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace raqo::obs

#endif  // RAQO_OBS_JSON_H_
