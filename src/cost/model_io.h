#ifndef RAQO_COST_MODEL_IO_H_
#define RAQO_COST_MODEL_IO_H_

#include <string>

#include "common/result.h"
#include "cost/cost_model.h"

namespace raqo::cost {

/// Serializes a trained cost model to a small line-based text format.
/// The paper calls training "a one-time investment for each system";
/// persistence is how that investment is shipped to the optimizer fleet.
/// Weights round-trip exactly (hex float encoding).
std::string SerializeModel(const OperatorCostModel& model);

/// Parses a model produced by SerializeModel. Fails with InvalidArgument
/// on any malformed or truncated input.
Result<OperatorCostModel> DeserializeModel(const std::string& text);

/// Convenience: both models of a JoinCostModels pair, SMJ first.
std::string SerializeModels(const JoinCostModels& models);
Result<JoinCostModels> DeserializeModels(const std::string& text);

}  // namespace raqo::cost

#endif  // RAQO_COST_MODEL_IO_H_
