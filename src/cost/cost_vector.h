#ifndef RAQO_COST_COST_VECTOR_H_
#define RAQO_COST_COST_VECTOR_H_

#include <string>

namespace raqo::cost {

/// A multi-objective cost: execution time and monetary cost. Both are
/// functions of the query plan and the resource configuration, which is
/// the paper's core argument for optimizing the two jointly
/// (Section IV, key feature iv).
struct CostVector {
  double seconds = 0.0;
  double dollars = 0.0;

  CostVector operator+(const CostVector& o) const {
    return CostVector{seconds + o.seconds, dollars + o.dollars};
  }
  CostVector& operator+=(const CostVector& o) {
    seconds += o.seconds;
    dollars += o.dollars;
    return *this;
  }

  /// Pareto dominance: at least as good on both objectives and strictly
  /// better on one.
  bool Dominates(const CostVector& o) const {
    return seconds <= o.seconds && dollars <= o.dollars &&
           (seconds < o.seconds || dollars < o.dollars);
  }

  /// Epsilon-approximate dominance: this cost, inflated by (1 + eps),
  /// still weakly dominates `o`. Used by the randomized multi-objective
  /// planner's approximate Pareto archive.
  bool ApproxDominates(const CostVector& o, double eps) const {
    return seconds <= (1.0 + eps) * o.seconds &&
           dollars <= (1.0 + eps) * o.dollars;
  }

  /// Scalarization for single-objective planners: time_weight * seconds +
  /// (1 - time_weight) * dollars.
  double Weighted(double time_weight) const {
    return time_weight * seconds + (1.0 - time_weight) * dollars;
  }

  std::string ToString() const;
};

}  // namespace raqo::cost

#endif  // RAQO_COST_COST_VECTOR_H_
