#include "cost/model_io.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/strings.h"

namespace raqo::cost {

namespace {

constexpr const char* kHeader = "raqo-cost-model v1";

/// Exact double round-trip via hexadecimal floating point.
std::string HexDouble(double v) { return StrPrintf("%a", v); }

Result<double> ParseHexDouble(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == s.c_str()) {
    return Status::InvalidArgument("malformed number: " + s);
  }
  return v;
}

}  // namespace

std::string SerializeModel(const OperatorCostModel& model) {
  std::string out = std::string(kHeader) + "\n";
  out += "name " + model.name() + "\n";
  const char* set_name = "paper";
  if (model.feature_set() == FeatureSet::kExtended) set_name = "extended";
  if (model.feature_set() == FeatureSet::kPeakedProbe) {
    set_name = "peaked-probe";
  }
  out += std::string("feature-set ") + set_name + "\n";
  out += StrPrintf("intercept %d\n", model.model().has_intercept ? 1 : 0);
  out += StrPrintf("weights %zu", model.model().weights.size());
  for (double w : model.model().weights) out += " " + HexDouble(w);
  out += "\n";
  return out;
}

Result<OperatorCostModel> DeserializeModel(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("missing cost-model header");
  }
  std::string name;
  FeatureSet feature_set = FeatureSet::kPaper;
  LinearModel model;
  bool have_name = false;
  bool have_set = false;
  bool have_intercept = false;
  bool have_weights = false;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "name") {
      fields >> std::ws;
      std::getline(fields, name);
      have_name = !name.empty();
    } else if (key == "feature-set") {
      std::string value;
      fields >> value;
      if (value == "paper") {
        feature_set = FeatureSet::kPaper;
      } else if (value == "extended") {
        feature_set = FeatureSet::kExtended;
      } else if (value == "peaked-probe") {
        feature_set = FeatureSet::kPeakedProbe;
      } else {
        return Status::InvalidArgument("unknown feature set: " + value);
      }
      have_set = true;
    } else if (key == "intercept") {
      int v = -1;
      fields >> v;
      if (v != 0 && v != 1) {
        return Status::InvalidArgument("intercept must be 0 or 1");
      }
      model.has_intercept = (v == 1);
      have_intercept = true;
    } else if (key == "weights") {
      size_t count = 0;
      fields >> count;
      model.weights.clear();
      for (size_t i = 0; i < count; ++i) {
        std::string token;
        if (!(fields >> token)) {
          return Status::InvalidArgument("truncated weight list");
        }
        RAQO_ASSIGN_OR_RETURN(double w, ParseHexDouble(token));
        model.weights.push_back(w);
      }
      have_weights = true;
    } else {
      return Status::InvalidArgument("unknown field: " + key);
    }
  }
  if (!have_name || !have_set || !have_intercept || !have_weights) {
    return Status::InvalidArgument("incomplete cost-model serialization");
  }
  const size_t expected =
      NumFeatures(feature_set) + (model.has_intercept ? 1 : 0);
  if (model.weights.size() != expected) {
    return Status::InvalidArgument(StrPrintf(
        "weight count %zu does not match feature set (expected %zu)",
        model.weights.size(), expected));
  }
  return OperatorCostModel(std::move(name), std::move(model), feature_set);
}

std::string SerializeModels(const JoinCostModels& models) {
  return SerializeModel(models.smj) + "---\n" + SerializeModel(models.bhj);
}

Result<JoinCostModels> DeserializeModels(const std::string& text) {
  const size_t sep = text.find("---\n");
  if (sep == std::string::npos) {
    return Status::InvalidArgument("missing model-pair separator");
  }
  RAQO_ASSIGN_OR_RETURN(OperatorCostModel smj,
                        DeserializeModel(text.substr(0, sep)));
  RAQO_ASSIGN_OR_RETURN(OperatorCostModel bhj,
                        DeserializeModel(text.substr(sep + 4)));
  return JoinCostModels{std::move(smj), std::move(bhj)};
}

}  // namespace raqo::cost
