#include "cost/cost_vector.h"

#include "common/strings.h"

namespace raqo::cost {

std::string CostVector::ToString() const {
  return StrPrintf("(%.3f s, $%.5f)", seconds, dollars);
}

}  // namespace raqo::cost
