#ifndef RAQO_COST_MODEL_BOUNDS_H_
#define RAQO_COST_MODEL_BOUNDS_H_

#include <string>
#include <vector>

#include "common/regression.h"
#include "common/result.h"
#include "cost/cost_model.h"
#include "cost/features.h"
#include "resource/resource_config.h"

namespace raqo::cost {

/// A sound lower-bound oracle over rectangular resource boxes for one
/// linear OperatorCostModel — the "monotone cost-model dimensions,
/// validated at model load" half of the switch-aware grid search
/// (docs/PERF.md).
///
/// Soundness argument. Every feature of the supported sets is, for fixed
/// data characteristics, monotone along each resource dimension over any
/// positive box (FeatureResourceTrends declares this analytically; the
/// sets are a closed enum). A componentwise-monotone function attains its
/// extremes over a box at the box corners, so for each feature i,
///   min over box of w_i * phi_i = min over the 4 corners of w_i * phi_i,
/// and summing per-feature corner minima under-approximates the linear
/// response everywhere in the box:
///   sum_i min_corners(w_i * phi_i) + intercept <= w . phi(r) for all r.
/// PredictSeconds clamps at kMinSeconds, and max is monotone, so
///   max(linear lower bound, kMinSeconds) <= PredictSeconds(r).
/// The bound needs no assumption on weight signs and is exact whenever
/// one corner simultaneously minimizes every term.
///
/// Create() refuses models whose feature set is not declared
/// per-dimension monotone (e.g. FeatureSet::kPeakedProbe) or whose
/// weights are non-finite, and additionally cross-checks the bound
/// numerically against direct predictions on a sample grid — rejection
/// makes the caller fall back to the plain exhaustive scan, never an
/// unsound prune.
class ResourceBoundOracle {
 public:
  /// Validates `model` and builds the oracle (which keeps its own copy
  /// of the weights, so the model may be destroyed afterwards).
  static Result<ResourceBoundOracle> Create(const OperatorCostModel& model);

  /// Lower bound of PredictSeconds over every resource configuration in
  /// the inclusive box [lo, hi], for the fixed data characteristics in
  /// `data` (its resource fields are ignored). Requires lo <= hi per
  /// dimension and positive resource values.
  double SecondsLowerBound(const JoinFeatures& data,
                           const resource::ResourceConfig& lo,
                           const resource::ResourceConfig& hi) const;

 private:
  ResourceBoundOracle(LinearModel model, FeatureSet feature_set)
      : model_(std::move(model)), feature_set_(feature_set) {}

  LinearModel model_;
  FeatureSet feature_set_;
};

}  // namespace raqo::cost

#endif  // RAQO_COST_MODEL_BOUNDS_H_
