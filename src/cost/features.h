#ifndef RAQO_COST_FEATURES_H_
#define RAQO_COST_FEATURES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace raqo::cost {

/// The raw inputs of the cost model (Section VI-A): data characteristics
/// of the join (its two input sizes) and the resource configuration.
struct JoinFeatures {
  /// Smaller input size in GB (`ss`, the paper's data characteristic).
  double smaller_gb = 0.0;
  /// Larger input size in GB. Used only by the extended feature set; the
  /// paper's published model is blind to it.
  double larger_gb = 0.0;
  /// Container size in GB (`cs`).
  double container_size_gb = 0.0;
  /// Number of concurrent containers (`nc`).
  double num_containers = 0.0;
};

/// Which feature expansion a model is trained/evaluated with.
enum class FeatureSet {
  /// The paper's exact feature vector: [ss, ss^2, cs, cs^2, nc, nc^2,
  /// cs*nc]. Required for interpreting the published coefficient
  /// vectors.
  kPaper,
  /// An extended set that also captures the larger input and the
  /// hyperbolic scaling of parallel operators:
  /// [ss, ls, ss/nc, ls/nc, ss*nc, nc, cs, ss/cs, ls/cs, 1/cs].
  /// The paper lists cost-model tuning ("adding more features") as
  /// future work; this is that extension, and it is the default for
  /// models trained against the execution simulator.
  kExtended,
  /// A deliberately resource-NON-monotone set: [ss, cs*(14-cs), nc].
  /// The middle feature peaks at cs = 7, inside the paper-default grid,
  /// so no corner bound over a container-size interval is sound for it.
  /// Models over this set predict fine; the switch-aware grid search's
  /// monotonicity validation must *reject* them and fall back to the
  /// exhaustive scan — this set exists to keep that rejection path
  /// honest (tests/incremental_search_test.cc).
  kPeakedProbe,
};

/// Number of expanded features for each set.
inline constexpr size_t kNumPaperFeatures = 7;
inline constexpr size_t kNumExtendedFeatures = 10;
inline constexpr size_t kNumPeakedProbeFeatures = 3;
/// Upper bound across all feature sets (for stack buffers).
inline constexpr size_t kMaxFeatures = 16;
size_t NumFeatures(FeatureSet set);

/// Expands the raw inputs into the chosen feature vector.
std::vector<double> ExpandFeatures(const JoinFeatures& f, FeatureSet set);

/// Allocation-free variant for the planner hot path: writes into `out`
/// (at least kMaxFeatures doubles) and returns the feature count.
/// Resource planning evaluates the cost model hundreds of millions of
/// times on the paper's largest clusters (Figure 15), so this path must
/// not allocate.
size_t ExpandFeaturesInto(const JoinFeatures& f, FeatureSet set,
                          double* out);

/// Names of the expanded features, aligned with ExpandFeatures output.
const std::vector<std::string>& FeatureNames(FeatureSet set);

/// Monotone trend of one expanded feature along one resource dimension,
/// valid for any fixed data characteristics ss, ls >= 0 and positive
/// resource values (the domain every ClusterConditions grid lives in).
/// kIncreasing/kDecreasing are weak (non-strict) trends.
enum class FeatureTrend : uint8_t {
  kConstant,
  kIncreasing,
  kDecreasing,
  kNonMonotone,
};

/// Trend of one feature along each of the two resource dimensions.
struct FeatureResourceTrend {
  FeatureTrend container_size = FeatureTrend::kConstant;
  FeatureTrend num_containers = FeatureTrend::kConstant;
};

/// Per-feature resource monotonicity metadata, aligned with
/// ExpandFeatures output. Declared analytically per feature set (the
/// sets are a closed enum, so each expression is audited by hand here
/// rather than probed); the bound oracle re-validates numerically at
/// model load as defense in depth.
const std::vector<FeatureResourceTrend>& FeatureResourceTrends(
    FeatureSet set);

/// True when every feature of `set` is per-dimension monotone in the
/// resource dimensions — the property that makes interval corner bounds
/// sound (docs/PERF.md): a componentwise-monotone function attains its
/// extremes over a box at the box corners.
bool FeatureSetResourceMonotone(FeatureSet set);

}  // namespace raqo::cost

#endif  // RAQO_COST_FEATURES_H_
