#ifndef RAQO_COST_MODEL_EVAL_H_
#define RAQO_COST_MODEL_EVAL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "cost/cost_model.h"

namespace raqo::cost {

/// Goodness-of-fit of a cost model against (held-out) profile samples.
/// The paper's cost model is "a one-time investment for each system";
/// this report is how that investment is audited before trusting the
/// planner to it.
struct ModelFitReport {
  double r_squared = 0.0;
  double rmse_seconds = 0.0;
  /// Mean |prediction - truth| / truth, in percent.
  double mean_abs_pct_error = 0.0;
  size_t samples = 0;

  std::string ToString() const;
};

/// Evaluates `model` on `samples`. Fails on an empty sample set.
Result<ModelFitReport> EvaluateFit(const OperatorCostModel& model,
                                   const std::vector<ProfileSample>& samples);

}  // namespace raqo::cost

#endif  // RAQO_COST_MODEL_EVAL_H_
