#include "cost/model_eval.h"

#include <cmath>

#include "common/strings.h"

namespace raqo::cost {

std::string ModelFitReport::ToString() const {
  return StrPrintf("R^2=%.4f rmse=%.2fs mape=%.1f%% (n=%zu)", r_squared,
                   rmse_seconds, mean_abs_pct_error, samples);
}

Result<ModelFitReport> EvaluateFit(
    const OperatorCostModel& model,
    const std::vector<ProfileSample>& samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("cannot evaluate a model on no samples");
  }
  double mean = 0.0;
  for (const ProfileSample& s : samples) mean += s.seconds;
  mean /= static_cast<double>(samples.size());

  double ss_res = 0.0;
  double ss_tot = 0.0;
  double abs_pct = 0.0;
  for (const ProfileSample& s : samples) {
    const double pred = model.PredictSeconds(s.features);
    ss_res += (s.seconds - pred) * (s.seconds - pred);
    ss_tot += (s.seconds - mean) * (s.seconds - mean);
    if (s.seconds > 0.0) {
      abs_pct += std::fabs(pred - s.seconds) / s.seconds;
    }
  }
  ModelFitReport report;
  report.samples = samples.size();
  report.rmse_seconds =
      std::sqrt(ss_res / static_cast<double>(samples.size()));
  report.r_squared =
      ss_tot == 0.0 ? (ss_res == 0.0 ? 1.0 : 0.0) : 1.0 - ss_res / ss_tot;
  report.mean_abs_pct_error =
      abs_pct / static_cast<double>(samples.size()) * 100.0;
  return report;
}

}  // namespace raqo::cost
