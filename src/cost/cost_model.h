#ifndef RAQO_COST_COST_MODEL_H_
#define RAQO_COST_COST_MODEL_H_

#include <string>
#include <vector>

#include "common/regression.h"
#include "common/result.h"
#include "cost/features.h"
#include "plan/plan_node.h"

namespace raqo::cost {

/// A training observation for the cost model: raw features plus the
/// measured (or simulated) runtime.
struct ProfileSample {
  JoinFeatures features;
  double seconds = 0.0;
};

/// Learned cost of one physical operator implementation as a function of
/// data and resources: f(d, r) -> C (Section VI-A). Wraps a linear model
/// over an expanded feature vector and clamps predictions to a small
/// positive floor, since a regression fitted on a finite profile grid can
/// extrapolate below zero.
class OperatorCostModel {
 public:
  /// `name` identifies the model (also used as the resource-plan cache
  /// discriminator). `model.weights` must match the feature set's arity
  /// (+1 when it carries an intercept).
  OperatorCostModel(std::string name, LinearModel model,
                    FeatureSet feature_set);

  /// Fits a model from profile samples via OLS over the expanded
  /// features (extended set by default; pass FeatureSet::kPaper to fit
  /// the paper's exact model form).
  static Result<OperatorCostModel> Train(
      std::string name, const std::vector<ProfileSample>& samples,
      FeatureSet feature_set = FeatureSet::kExtended);

  const std::string& name() const { return name_; }
  const LinearModel& model() const { return model_; }
  FeatureSet feature_set() const { return feature_set_; }

  /// Predicted runtime in seconds, clamped to >= kMinSeconds.
  double PredictSeconds(const JoinFeatures& features) const;

  /// Prediction floor.
  static constexpr double kMinSeconds = 1e-3;

 private:
  std::string name_;
  LinearModel model_;
  FeatureSet feature_set_;
};

/// The pair of join-operator cost models RAQO plans with.
struct JoinCostModels {
  OperatorCostModel smj;
  OperatorCostModel bhj;

  const OperatorCostModel& ForImpl(plan::JoinImpl impl) const {
    return impl == plan::JoinImpl::kSortMergeJoin ? smj : bhj;
  }
};

/// The SMJ coefficients the paper published from its regression analysis
/// over Hive profile runs (Section VI-A):
///   [1.62643613e+01, 9.68774888e-01, 1.33866542e-02, 1.60639851e-01,
///    -7.82618920e-03, -3.91309460e-01, 1.10387975e-01]
/// SMJ has positive coefficients for container size and negative for the
/// number of containers.
OperatorCostModel PaperHiveSmjModel();

/// The BHJ coefficients the paper published (opposite signs: BHJ improves
/// with container size rather than parallelism):
///   [1.00739509e+04, -6.72184592e+02, -1.37392901e+01, -1.64871481e+02,
///    2.44721676e-02, 1.22360838e+00, -1.37319484e+02]
OperatorCostModel PaperHiveBhjModel();

/// Both paper-published models bundled.
JoinCostModels PaperHiveModels();

}  // namespace raqo::cost

#endif  // RAQO_COST_COST_MODEL_H_
