#include "cost/model_bounds.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace raqo::cost {

namespace {

/// Expands the features at one box corner into `out`.
size_t CornerFeatures(const JoinFeatures& data, FeatureSet set, double cs,
                      double nc, double* out) {
  JoinFeatures corner = data;
  corner.container_size_gb = cs;
  corner.num_containers = nc;
  return ExpandFeaturesInto(corner, set, out);
}

}  // namespace

Result<ResourceBoundOracle> ResourceBoundOracle::Create(
    const OperatorCostModel& model) {
  const FeatureSet set = model.feature_set();
  if (!FeatureSetResourceMonotone(set)) {
    return Status::FailedPrecondition(StrPrintf(
        "cost model '%s' uses a feature set that is not per-dimension "
        "monotone in the resource dimensions; interval corner bounds "
        "would be unsound",
        model.name().c_str()));
  }
  for (double w : model.model().weights) {
    if (!std::isfinite(w)) {
      return Status::FailedPrecondition(StrPrintf(
          "cost model '%s' has a non-finite weight; bounds undefined",
          model.name().c_str()));
    }
  }
  ResourceBoundOracle oracle(model.model(), set);

  // Defense in depth against a mis-declared trend table: the bound must
  // under-approximate direct predictions at interior cells of sampled
  // boxes spanning several data scales. This probe cannot *prove*
  // monotonicity (only the analytical declaration does), but it catches
  // a registry entry that is simply wrong before any query prunes on it.
  static constexpr double kDataGb[] = {0.0, 0.4, 7.7, 250.0};
  static constexpr double kCsEdges[] = {1.0, 4.0, 10.0};
  static constexpr double kNcEdges[] = {1.0, 33.0, 100.0};
  for (double ss : kDataGb) {
    for (double ls : kDataGb) {
      if (ls < ss) continue;
      JoinFeatures data;
      data.smaller_gb = ss;
      data.larger_gb = ls;
      for (size_t a = 0; a + 1 < 3; ++a) {
        for (size_t b = 0; b + 1 < 3; ++b) {
          const resource::ResourceConfig lo(kCsEdges[a], kNcEdges[b]);
          const resource::ResourceConfig hi(kCsEdges[a + 1],
                                            kNcEdges[b + 1]);
          const double bound = oracle.SecondsLowerBound(data, lo, hi);
          for (double fcs = 0.0; fcs <= 1.0; fcs += 0.5) {
            for (double fnc = 0.0; fnc <= 1.0; fnc += 0.5) {
              JoinFeatures probe = data;
              probe.container_size_gb =
                  kCsEdges[a] + fcs * (kCsEdges[a + 1] - kCsEdges[a]);
              probe.num_containers =
                  kNcEdges[b] + fnc * (kNcEdges[b + 1] - kNcEdges[b]);
              if (model.PredictSeconds(probe) < bound) {
                return Status::FailedPrecondition(StrPrintf(
                    "cost model '%s' violated its own lower bound at "
                    "cs=%.2f nc=%.2f (ss=%.2f ls=%.2f); the declared "
                    "monotonicity metadata is wrong",
                    model.name().c_str(), probe.container_size_gb,
                    probe.num_containers, ss, ls));
              }
            }
          }
        }
      }
    }
  }
  return oracle;
}

double ResourceBoundOracle::SecondsLowerBound(
    const JoinFeatures& data, const resource::ResourceConfig& lo,
    const resource::ResourceConfig& hi) const {
  // Per-feature corner minima: phi is componentwise monotone, so each
  // w_i * phi_i attains its box minimum at one of the 4 corners.
  double corners[4][kMaxFeatures];
  const double cs_lo = lo.container_size_gb();
  const double cs_hi = hi.container_size_gb();
  const double nc_lo = lo.num_containers();
  const double nc_hi = hi.num_containers();
  const size_t n =
      CornerFeatures(data, feature_set_, cs_lo, nc_lo, corners[0]);
  CornerFeatures(data, feature_set_, cs_lo, nc_hi, corners[1]);
  CornerFeatures(data, feature_set_, cs_hi, nc_lo, corners[2]);
  CornerFeatures(data, feature_set_, cs_hi, nc_hi, corners[3]);

  double sum = model_.has_intercept ? model_.weights.back() : 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double w = model_.weights[i];
    double term = w * corners[0][i];
    for (int c = 1; c < 4; ++c) term = std::min(term, w * corners[c][i]);
    sum += term;
  }
  return std::max(sum, OperatorCostModel::kMinSeconds);
}

}  // namespace raqo::cost
