#include "cost/cost_model.h"

#include <algorithm>

#include "common/logging.h"

namespace raqo::cost {

OperatorCostModel::OperatorCostModel(std::string name, LinearModel model,
                                     FeatureSet feature_set)
    : name_(std::move(name)),
      model_(std::move(model)),
      feature_set_(feature_set) {
  const size_t expected =
      NumFeatures(feature_set_) + (model_.has_intercept ? 1 : 0);
  RAQO_CHECK(model_.weights.size() == expected)
      << "cost model " << name_ << " has " << model_.weights.size()
      << " weights, expected " << expected;
}

Result<OperatorCostModel> OperatorCostModel::Train(
    std::string name, const std::vector<ProfileSample>& samples,
    FeatureSet feature_set) {
  if (samples.empty()) {
    return Status::InvalidArgument("cannot train a cost model on no samples");
  }
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  x.reserve(samples.size());
  y.reserve(samples.size());
  for (const ProfileSample& s : samples) {
    x.push_back(ExpandFeatures(s.features, feature_set));
    y.push_back(s.seconds);
  }
  OlsOptions options;
  options.fit_intercept = true;
  options.ridge_lambda = 1e-6;
  RAQO_ASSIGN_OR_RETURN(LinearModel model, FitOls(x, y, options));
  return OperatorCostModel(std::move(name), std::move(model), feature_set);
}

double OperatorCostModel::PredictSeconds(const JoinFeatures& features) const {
  // Hot path of resource planning: no allocation.
  double buffer[kMaxFeatures];
  const size_t n = ExpandFeaturesInto(features, feature_set_, buffer);
  double sum = model_.has_intercept ? model_.weights.back() : 0.0;
  for (size_t i = 0; i < n; ++i) sum += model_.weights[i] * buffer[i];
  return std::max(sum, kMinSeconds);
}

OperatorCostModel PaperHiveSmjModel() {
  LinearModel model;
  model.weights = {1.62643613e+01,  9.68774888e-01, 1.33866542e-02,
                   1.60639851e-01,  -7.82618920e-03, -3.91309460e-01,
                   1.10387975e-01};
  model.has_intercept = false;
  return OperatorCostModel("smj-paper-hive", std::move(model),
                           FeatureSet::kPaper);
}

OperatorCostModel PaperHiveBhjModel() {
  LinearModel model;
  model.weights = {1.00739509e+04,  -6.72184592e+02, -1.37392901e+01,
                   -1.64871481e+02, 2.44721676e-02,  1.22360838e+00,
                   -1.37319484e+02};
  model.has_intercept = false;
  return OperatorCostModel("bhj-paper-hive", std::move(model),
                           FeatureSet::kPaper);
}

JoinCostModels PaperHiveModels() {
  return JoinCostModels{PaperHiveSmjModel(), PaperHiveBhjModel()};
}

}  // namespace raqo::cost
