#include "cost/features.h"

#include <algorithm>

#include "common/logging.h"

namespace raqo::cost {

size_t NumFeatures(FeatureSet set) {
  switch (set) {
    case FeatureSet::kPaper:
      return kNumPaperFeatures;
    case FeatureSet::kExtended:
      return kNumExtendedFeatures;
    case FeatureSet::kPeakedProbe:
      return kNumPeakedProbeFeatures;
  }
  return kNumPaperFeatures;
}

std::vector<double> ExpandFeatures(const JoinFeatures& f, FeatureSet set) {
  double buffer[kMaxFeatures];
  const size_t n = ExpandFeaturesInto(f, set, buffer);
  return std::vector<double>(buffer, buffer + n);
}

size_t ExpandFeaturesInto(const JoinFeatures& f, FeatureSet set,
                          double* out) {
  const double ss = f.smaller_gb;
  const double ls = f.larger_gb;
  const double cs = f.container_size_gb;
  const double nc = f.num_containers;
  if (set == FeatureSet::kPaper) {
    out[0] = ss;
    out[1] = ss * ss;
    out[2] = cs;
    out[3] = cs * cs;
    out[4] = nc;
    out[5] = nc * nc;
    out[6] = cs * nc;
    return kNumPaperFeatures;
  }
  if (set == FeatureSet::kPeakedProbe) {
    out[0] = ss;
    out[1] = cs * (14.0 - cs);  // peaks at cs = 7, inside the paper grid
    out[2] = nc;
    return kNumPeakedProbeFeatures;
  }
  const double safe_nc = std::max(nc, 1e-9);
  const double safe_cs = std::max(cs, 1e-9);
  out[0] = ss;
  out[1] = ls;
  out[2] = ss / safe_nc;
  out[3] = ls / safe_nc;
  out[4] = ss * nc;
  out[5] = nc;
  out[6] = cs;
  out[7] = ss / safe_cs;
  out[8] = ls / safe_cs;
  out[9] = 1.0 / safe_cs;
  return kNumExtendedFeatures;
}

const std::vector<std::string>& FeatureNames(FeatureSet set) {
  static const std::vector<std::string>* paper =
      new std::vector<std::string>{"ss", "ss^2", "cs",   "cs^2",
                                   "nc", "nc^2", "cs*nc"};
  static const std::vector<std::string>* extended =
      new std::vector<std::string>{"ss",    "ls", "ss/nc", "ls/nc",
                                   "ss*nc", "nc", "cs",    "ss/cs",
                                   "ls/cs", "1/cs"};
  static const std::vector<std::string>* peaked =
      new std::vector<std::string>{"ss", "cs*(14-cs)", "nc"};
  switch (set) {
    case FeatureSet::kPaper:
      return *paper;
    case FeatureSet::kExtended:
      return *extended;
    case FeatureSet::kPeakedProbe:
      return *peaked;
  }
  return *paper;
}

const std::vector<FeatureResourceTrend>& FeatureResourceTrends(
    FeatureSet set) {
  using T = FeatureTrend;
  // Trends hold for ss, ls >= 0 and cs, nc > 0, the domain of every
  // valid cluster grid. Division features use max(x, 1e-9) guards in
  // ExpandFeaturesInto; max of a monotone function is monotone, so the
  // guards do not change any trend.
  static const std::vector<FeatureResourceTrend>* paper =
      new std::vector<FeatureResourceTrend>{
          {T::kConstant, T::kConstant},      // ss
          {T::kConstant, T::kConstant},      // ss^2
          {T::kIncreasing, T::kConstant},    // cs
          {T::kIncreasing, T::kConstant},    // cs^2
          {T::kConstant, T::kIncreasing},    // nc
          {T::kConstant, T::kIncreasing},    // nc^2
          {T::kIncreasing, T::kIncreasing},  // cs*nc
      };
  static const std::vector<FeatureResourceTrend>* extended =
      new std::vector<FeatureResourceTrend>{
          {T::kConstant, T::kConstant},     // ss
          {T::kConstant, T::kConstant},     // ls
          {T::kConstant, T::kDecreasing},   // ss/nc
          {T::kConstant, T::kDecreasing},   // ls/nc
          {T::kConstant, T::kIncreasing},   // ss*nc
          {T::kConstant, T::kIncreasing},   // nc
          {T::kIncreasing, T::kConstant},   // cs
          {T::kDecreasing, T::kConstant},   // ss/cs
          {T::kDecreasing, T::kConstant},   // ls/cs
          {T::kDecreasing, T::kConstant},   // 1/cs
      };
  static const std::vector<FeatureResourceTrend>* peaked =
      new std::vector<FeatureResourceTrend>{
          {T::kConstant, T::kConstant},     // ss
          {T::kNonMonotone, T::kConstant},  // cs*(14-cs)
          {T::kConstant, T::kIncreasing},   // nc
      };
  switch (set) {
    case FeatureSet::kPaper:
      return *paper;
    case FeatureSet::kExtended:
      return *extended;
    case FeatureSet::kPeakedProbe:
      return *peaked;
  }
  return *paper;
}

bool FeatureSetResourceMonotone(FeatureSet set) {
  for (const FeatureResourceTrend& trend : FeatureResourceTrends(set)) {
    if (trend.container_size == FeatureTrend::kNonMonotone ||
        trend.num_containers == FeatureTrend::kNonMonotone) {
      return false;
    }
  }
  return true;
}

}  // namespace raqo::cost
