#include "cost/features.h"

#include <algorithm>

#include "common/logging.h"

namespace raqo::cost {

size_t NumFeatures(FeatureSet set) {
  return set == FeatureSet::kPaper ? kNumPaperFeatures
                                   : kNumExtendedFeatures;
}

std::vector<double> ExpandFeatures(const JoinFeatures& f, FeatureSet set) {
  double buffer[kMaxFeatures];
  const size_t n = ExpandFeaturesInto(f, set, buffer);
  return std::vector<double>(buffer, buffer + n);
}

size_t ExpandFeaturesInto(const JoinFeatures& f, FeatureSet set,
                          double* out) {
  const double ss = f.smaller_gb;
  const double ls = f.larger_gb;
  const double cs = f.container_size_gb;
  const double nc = f.num_containers;
  if (set == FeatureSet::kPaper) {
    out[0] = ss;
    out[1] = ss * ss;
    out[2] = cs;
    out[3] = cs * cs;
    out[4] = nc;
    out[5] = nc * nc;
    out[6] = cs * nc;
    return kNumPaperFeatures;
  }
  const double safe_nc = std::max(nc, 1e-9);
  const double safe_cs = std::max(cs, 1e-9);
  out[0] = ss;
  out[1] = ls;
  out[2] = ss / safe_nc;
  out[3] = ls / safe_nc;
  out[4] = ss * nc;
  out[5] = nc;
  out[6] = cs;
  out[7] = ss / safe_cs;
  out[8] = ls / safe_cs;
  out[9] = 1.0 / safe_cs;
  return kNumExtendedFeatures;
}

const std::vector<std::string>& FeatureNames(FeatureSet set) {
  static const std::vector<std::string>* paper =
      new std::vector<std::string>{"ss", "ss^2", "cs",   "cs^2",
                                   "nc", "nc^2", "cs*nc"};
  static const std::vector<std::string>* extended =
      new std::vector<std::string>{"ss",    "ls", "ss/nc", "ls/nc",
                                   "ss*nc", "nc", "cs",    "ss/cs",
                                   "ls/cs", "1/cs"};
  return set == FeatureSet::kPaper ? *paper : *extended;
}

}  // namespace raqo::cost
