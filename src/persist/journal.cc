#include "persist/journal.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/fileio.h"
#include "common/strings.h"

namespace raqo::persist {

namespace {

void AppendU32Be(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>(v & 0xFF));
}

uint32_t ReadU32Be(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return (static_cast<uint32_t>(b[0]) << 24) |
         (static_cast<uint32_t>(b[1]) << 16) |
         (static_cast<uint32_t>(b[2]) << 8) | static_cast<uint32_t>(b[3]);
}

}  // namespace

std::string EncodeRecord(std::string_view payload) {
  std::string record;
  record.reserve(kRecordHeaderBytes + payload.size());
  AppendU32Be(static_cast<uint32_t>(payload.size()), &record);
  AppendU32Be(io::Crc32(payload), &record);
  record.append(payload.data(), payload.size());
  return record;
}

Result<ReplayResult> ReplayRecords(std::string_view content,
                                   std::string_view magic) {
  if (content.size() < kMagicBytes) {
    // A crash can land between creating the file and getting the magic
    // onto disk; a proper prefix of the magic (or nothing at all) is
    // that torn write, not a foreign file — report it as an empty
    // stream so the writer recreates the header.
    if (magic.substr(0, content.size()) == content) {
      ReplayResult torn;
      torn.valid_bytes = 0;
      torn.torn_tail = !content.empty();
      if (torn.torn_tail) torn.tail_error = "torn magic header";
      return torn;
    }
    return Status::InvalidArgument(StrPrintf(
        "file does not start with the %.*s magic",
        static_cast<int>(magic.size()), magic.data()));
  }
  if (content.substr(0, kMagicBytes) != magic) {
    return Status::InvalidArgument(StrPrintf(
        "file does not start with the %.*s magic",
        static_cast<int>(magic.size()), magic.data()));
  }
  ReplayResult out;
  size_t pos = kMagicBytes;
  while (pos < content.size()) {
    if (content.size() - pos < kRecordHeaderBytes) {
      out.torn_tail = true;
      out.tail_error = StrPrintf(
          "torn record header: %zu trailing bytes", content.size() - pos);
      break;
    }
    const uint32_t len = ReadU32Be(content.data() + pos);
    const uint32_t crc = ReadU32Be(content.data() + pos + 4);
    if (len > kMaxRecordBytes) {
      out.torn_tail = true;
      out.tail_error = StrPrintf(
          "corrupt length prefix (%u bytes) at offset %zu", len, pos);
      break;
    }
    if (content.size() - pos - kRecordHeaderBytes < len) {
      out.torn_tail = true;
      out.tail_error = StrPrintf(
          "torn record: %u payload bytes advertised, %zu present at "
          "offset %zu",
          len, content.size() - pos - kRecordHeaderBytes, pos);
      break;
    }
    const std::string_view payload =
        content.substr(pos + kRecordHeaderBytes, len);
    if (io::Crc32(payload) != crc) {
      out.torn_tail = true;
      out.tail_error =
          StrPrintf("checksum mismatch at offset %zu", pos);
      break;
    }
    out.payloads.emplace_back(payload);
    pos += kRecordHeaderBytes + len;
  }
  out.valid_bytes = static_cast<int64_t>(
      out.torn_tail ? pos : content.size());
  return out;
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone:
      return "none";
    case FsyncPolicy::kGroupCommit:
      return "group-commit";
    case FsyncPolicy::kEachRecord:
      return "each-record";
  }
  return "?";
}

Result<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& path, int64_t valid_bytes, FsyncPolicy policy,
    size_t group_commit_bytes) {
  const bool fresh = valid_bytes < static_cast<int64_t>(kMagicBytes);
  if (fresh) valid_bytes = 0;
  RAQO_ASSIGN_OR_RETURN(net::UniqueFd fd,
                        io::OpenForAppend(path, valid_bytes));
  std::unique_ptr<JournalWriter> writer(new JournalWriter(
      std::move(fd), valid_bytes, policy,
      std::max<size_t>(1, group_commit_bytes)));
  if (fresh) {
    RAQO_RETURN_IF_ERROR(io::WriteAll(writer->fd_.get(), kJournalMagic,
                                      sizeof(kJournalMagic)));
    writer->size_bytes_ = static_cast<int64_t>(kMagicBytes);
    // The magic is part of every later record's durability: sync it now
    // so an acknowledged first record can never sit behind an unsynced
    // header.
    RAQO_RETURN_IF_ERROR(writer->Sync());
  }
  return writer;
}

Status JournalWriter::Append(std::string_view payload) {
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument(StrPrintf(
        "journal record of %zu bytes exceeds the %zu-byte cap",
        payload.size(), kMaxRecordBytes));
  }
  const std::string record = EncodeRecord(payload);
  std::lock_guard<std::mutex> lock(mu_);
  RAQO_RETURN_IF_ERROR(io::WriteAll(fd_.get(), record.data(),
                                    record.size()));
  size_bytes_ += static_cast<int64_t>(record.size());
  ++records_;
  switch (policy_) {
    case FsyncPolicy::kNone:
      return Status::OK();
    case FsyncPolicy::kEachRecord:
      return SyncLocked();
    case FsyncPolicy::kGroupCommit:
      if (size_bytes_ - synced_bytes_ >=
          static_cast<int64_t>(group_commit_bytes_)) {
        return SyncLocked();
      }
      return Status::OK();
  }
  return Status::OK();
}

Status JournalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncLocked();
}

Status JournalWriter::SyncLocked() {
  if (synced_bytes_ == size_bytes_) return Status::OK();
  if (io::Fsync(fd_.get()) != 0) {
    return Status::FailedPrecondition(
        StrPrintf("journal fsync: %s", std::strerror(errno)));
  }
  synced_bytes_ = size_bytes_;
  return Status::OK();
}

int64_t JournalWriter::size_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_bytes_;
}

int64_t JournalWriter::synced_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return synced_bytes_;
}

int64_t JournalWriter::records_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

}  // namespace raqo::persist
