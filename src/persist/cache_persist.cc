#include "persist/cache_persist.h"

#include <utility>
#include <vector>

#include "common/fileio.h"
#include "common/json.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace raqo::persist {

std::string SerializeCacheEntry(const std::string& model,
                                const core::CachedResourcePlan& plan) {
  // Hand-rendered with fixed member order so equal entries always
  // serialize to equal bytes (journal replay and dump comparisons are
  // byte-level).
  std::string out;
  out.reserve(96 + model.size());
  out += "{\"model\":\"";
  out += JsonEscape(model);
  out += "\",\"key\":";
  out += JsonNumber(plan.key_gb);
  out += ",\"larger\":";
  out += JsonNumber(plan.larger_gb);
  out += ",\"cost\":";
  out += JsonNumber(plan.cost);
  out += ",\"cs\":";
  out += JsonNumber(plan.config.container_size_gb());
  out += ",\"nc\":";
  out += JsonNumber(plan.config.num_containers());
  out += "}";
  return out;
}

Result<core::CacheEntryRecord> ParseCacheEntry(std::string_view payload) {
  RAQO_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(payload));
  return ParseCacheEntry(doc);
}

Result<core::CacheEntryRecord> ParseCacheEntry(const JsonValue& doc) {
  const JsonValue* model = doc.FindString("model");
  const JsonValue* key = doc.FindNumber("key");
  const JsonValue* larger = doc.FindNumber("larger");
  const JsonValue* cost = doc.FindNumber("cost");
  const JsonValue* cs = doc.FindNumber("cs");
  const JsonValue* nc = doc.FindNumber("nc");
  if (model == nullptr || key == nullptr || larger == nullptr ||
      cost == nullptr || cs == nullptr || nc == nullptr) {
    return Status::InvalidArgument(
        "cache entry record is missing a required field");
  }
  core::CacheEntryRecord record;
  record.model = model->string_value();
  record.plan.key_gb = key->number_value();
  record.plan.larger_gb = larger->number_value();
  record.plan.cost = cost->number_value();
  record.plan.config = resource::ResourceConfig(cs->number_value(),
                                                nc->number_value());
  record.plan.smaller_gb = record.plan.key_gb;
  return record;
}

namespace {

void NoteAppend(int64_t journal_bytes) {
  if (!obs::MetricsOn()) return;
  static obs::Counter* appends =
      obs::DefaultMetrics().GetCounter("persist.journal.appends");
  static obs::Gauge* bytes =
      obs::DefaultMetrics().GetGauge("persist.journal.bytes");
  appends->Add(1);
  bytes->Set(static_cast<double>(journal_bytes));
}

void NoteAppendError() {
  if (!obs::MetricsOn()) return;
  static obs::Counter* errors =
      obs::DefaultMetrics().GetCounter("persist.journal.append_errors");
  errors->Add(1);
}

void NoteCompaction(int64_t snapshot_entries) {
  if (!obs::MetricsOn()) return;
  static obs::Counter* compactions =
      obs::DefaultMetrics().GetCounter("persist.compactions");
  static obs::Gauge* entries =
      obs::DefaultMetrics().GetGauge("persist.snapshot.entries");
  compactions->Add(1);
  entries->Set(static_cast<double>(snapshot_entries));
}

void NoteRecovery(const RecoveryStats& stats) {
  if (!obs::MetricsOn()) return;
  static obs::Gauge* ms =
      obs::DefaultMetrics().GetGauge("persist.recovery_ms");
  static obs::Gauge* entries =
      obs::DefaultMetrics().GetGauge("persist.recovered_entries");
  ms->Set(static_cast<double>(stats.recovery_ms));
  entries->Set(
      static_cast<double>(stats.snapshot_entries + stats.journal_records));
}

}  // namespace

CachePersistence::CachePersistence(PersistOptions opts,
                                   core::ResourcePlanCache* cache)
    : opts_(std::move(opts)), cache_(cache) {}

std::string CachePersistence::journal_path() const {
  return opts_.dir + "/cache.journal";
}

std::string CachePersistence::snapshot_path() const {
  return opts_.dir + "/cache.snapshot";
}

int64_t CachePersistence::ReplayInto(
    const std::vector<std::string>& payloads) {
  int64_t inserted = 0;
  for (const std::string& payload : payloads) {
    Result<core::CacheEntryRecord> record = ParseCacheEntry(payload);
    if (!record.ok()) {
      // The CRC already verified these bytes are what was written, so a
      // parse failure means a version skew or writer bug, not disk
      // corruption. Skip the record — losing one plan costs a cache
      // miss, refusing to start costs the node.
      ++recovery_.skipped_records;
      continue;
    }
    cache_->Insert(record->model, record->plan);
    ++inserted;
  }
  return inserted;
}

Result<std::unique_ptr<CachePersistence>> CachePersistence::Open(
    const PersistOptions& opts, core::ResourcePlanCache* cache) {
  if (opts.dir.empty()) {
    return Status::InvalidArgument("PersistOptions.dir must be set");
  }
  RAQO_RETURN_IF_ERROR(io::EnsureDirectory(opts.dir));
  std::unique_ptr<CachePersistence> p(
      new CachePersistence(opts, cache));
  Stopwatch timer;

  // Snapshot first (the compacted base state), then the journal (the
  // tail written since). Entries present in both are value-identical,
  // so the double Insert is a harmless overwrite.
  if (io::FileExists(p->snapshot_path())) {
    RAQO_ASSIGN_OR_RETURN(std::string content,
                          io::ReadFileToString(p->snapshot_path()));
    RAQO_ASSIGN_OR_RETURN(
        ReplayResult snap,
        ReplayRecords(content,
                      std::string_view(kSnapshotMagic, kMagicBytes)));
    p->recovery_.snapshot_entries = p->ReplayInto(snap.payloads);
  }
  int64_t journal_valid_bytes = 0;
  if (io::FileExists(p->journal_path())) {
    RAQO_ASSIGN_OR_RETURN(std::string content,
                          io::ReadFileToString(p->journal_path()));
    RAQO_ASSIGN_OR_RETURN(
        ReplayResult wal,
        ReplayRecords(content,
                      std::string_view(kJournalMagic, kMagicBytes)));
    p->recovery_.journal_records = p->ReplayInto(wal.payloads);
    p->recovery_.torn_tail = wal.torn_tail;
    journal_valid_bytes = wal.valid_bytes;
  }
  RAQO_ASSIGN_OR_RETURN(
      p->journal_,
      JournalWriter::Open(p->journal_path(), journal_valid_bytes,
                          opts.fsync_policy, opts.group_commit_bytes));
  p->recovery_.recovery_ms =
      static_cast<int64_t>(timer.ElapsedMicros() / 1000.0);
  NoteRecovery(p->recovery_);
  cache->SetEventListener(p.get());
  return p;
}

CachePersistence::~CachePersistence() {
  // Destruction cannot report; callers who care about the final sync's
  // status call Close() themselves first (it is idempotent).
  const Status ignored = Close();
  (void)ignored;
}

void CachePersistence::OnInsert(const std::string& model,
                                const core::CachedResourcePlan& plan) {
  const std::string payload = SerializeCacheEntry(model, plan);
  bool compact_due = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || journal_ == nullptr) return;
    const Status appended = journal_->Append(payload);
    if (!appended.ok()) {
      NoteAppendError();
      if (last_error_.ok()) last_error_ = appended;
      return;
    }
    NoteAppend(journal_->size_bytes());
    compact_due = opts_.compact_threshold_bytes > 0 &&
                  journal_->size_bytes() >= opts_.compact_threshold_bytes;
  }
  if (compact_due) {
    const Status compacted = Compact();
    if (!compacted.ok()) NoteError(compacted);
  }
}

void CachePersistence::NoteError(const Status& s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (last_error_.ok()) last_error_ = s;
}

Status CachePersistence::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_ == nullptr) return Status::OK();
  return journal_->Sync();
}

Status CachePersistence::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || journal_ == nullptr) {
    return Status::FailedPrecondition("persistence is closed");
  }
  return CompactLocked();
}

Status CachePersistence::CompactLocked() {
  // Holding mu_ for the whole fold keeps the invariant simple: every
  // insert is either fully before (entry in the dump, old record
  // discarded with the old journal) or fully after (entry journaled in
  // the fresh file; it may also appear in the dump when its cache write
  // preceded the fold — the replay overwrite is value-identical under
  // exact-mode determinism). Nothing is ever only in the truncated
  // journal.
  const std::vector<core::CacheEntryRecord> entries =
      cache_->DumpEntries();
  std::string blob(kSnapshotMagic, kMagicBytes);
  for (const core::CacheEntryRecord& entry : entries) {
    blob += EncodeRecord(SerializeCacheEntry(entry.model, entry.plan));
  }
  RAQO_RETURN_IF_ERROR(io::AtomicWriteFile(snapshot_path(), blob));
  // The snapshot covers everything the journal held; only now is the
  // journal safe to truncate. A crash in between replays both — an
  // idempotent, slower recovery, never a lossy one.
  journal_.reset();  // close the old fd before truncating the path
  RAQO_ASSIGN_OR_RETURN(
      journal_,
      JournalWriter::Open(journal_path(), 0, opts_.fsync_policy,
                          opts_.group_commit_bytes));
  ++compactions_;
  NoteCompaction(static_cast<int64_t>(entries.size()));
  return Status::OK();
}

Status CachePersistence::Close() {
  // Detach before the final sync so no new OnInsert can race the
  // teardown; a call already past the listener load finds closed_ under
  // mu_ and returns without touching the dead journal.
  cache_->SetEventListener(nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::OK();
  closed_ = true;
  if (journal_ == nullptr) return Status::OK();
  const Status synced = journal_->Sync();
  journal_.reset();
  return synced;
}

int64_t CachePersistence::journal_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_ == nullptr ? 0 : journal_->size_bytes();
}

Status CachePersistence::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

Status CachePersistence::read_and_clear_last_error() {
  std::lock_guard<std::mutex> lock(mu_);
  Status out = last_error_;
  last_error_ = Status::OK();
  return out;
}

int64_t CachePersistence::compactions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compactions_;
}

}  // namespace raqo::persist
