#ifndef RAQO_PERSIST_JOURNAL_H_
#define RAQO_PERSIST_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/net.h"
#include "common/result.h"
#include "common/status.h"

namespace raqo::persist {

/// On-disk journal format (docs/PERSISTENCE.md):
///
///   [8-byte magic "RAQOWAL1"]
///   [record]*
///
/// where each record is
///
///   [u32 BE payload length][u32 BE CRC-32 of payload][payload bytes]
///
/// Payloads are UTF-8 JSON documents (serialized cache events). The
/// CRC and the length prefix together make a torn tail — the half
/// record a crash mid-write leaves behind — detectable: replay stops
/// at the first record whose bytes are incomplete or whose checksum
/// disagrees, and reports how many bytes were verified so the writer
/// can truncate the tail before appending again. Snapshot files reuse
/// the same record stream under the magic "RAQOSNP1".
inline constexpr char kJournalMagic[8] = {'R', 'A', 'Q', 'O',
                                          'W', 'A', 'L', '1'};
inline constexpr char kSnapshotMagic[8] = {'R', 'A', 'Q', 'O',
                                           'S', 'N', 'P', '1'};
inline constexpr size_t kMagicBytes = 8;
inline constexpr size_t kRecordHeaderBytes = 8;  ///< length + CRC

/// Hard cap on one record's payload; a corrupt length prefix must not
/// drive a multi-gigabyte allocation during replay.
inline constexpr size_t kMaxRecordBytes = 4u << 20;

/// Renders one record (header + payload) ready to append.
std::string EncodeRecord(std::string_view payload);

/// Result of scanning one journal or snapshot file.
struct ReplayResult {
  /// Every payload whose length and checksum verified, in file order.
  std::vector<std::string> payloads;
  /// Bytes of the file covered by the magic plus verified records. A
  /// writer reopening the file truncates to this before appending.
  int64_t valid_bytes = 0;
  /// True when bytes followed the last verified record — a torn tail
  /// (crash mid-append) or a corrupt record; everything after the
  /// first bad byte is discarded.
  bool torn_tail = false;
  /// Human-readable description of why the scan stopped early ("" when
  /// the whole file verified).
  std::string tail_error;
};

/// Scans the record stream of `content` (a whole journal or snapshot
/// file). Fails only when the magic itself is wrong — a missing or
/// damaged tail is tolerated and reported via ReplayResult instead, so
/// recovery after a crash always proceeds with the verified prefix.
Result<ReplayResult> ReplayRecords(std::string_view content,
                                   std::string_view magic);

/// When to fsync the journal file.
enum class FsyncPolicy {
  /// Never fsync; durability is whatever the OS page cache provides.
  /// Fastest, loses the tail written since the last OS writeback on
  /// power failure (not on process crash — the page cache survives).
  kNone,
  /// Group commit: records accumulate and one fsync covers the whole
  /// group once `group_commit_bytes` have been appended since the last
  /// sync (or when Sync() is called explicitly). The default.
  kGroupCommit,
  /// fsync after every record. Slowest, smallest loss window.
  kEachRecord,
};

const char* FsyncPolicyName(FsyncPolicy policy);

/// Append-side of the journal: thread-safe, records are written
/// whole-record-at-a-time under one mutex so concurrent appenders can
/// never interleave bytes (an interleaved record would be torn on
/// disk). A record is *acknowledged durable* only once a successful
/// Sync() (explicit or policy-triggered) covers it; Append() returning
/// OK alone promises the bytes reached the kernel, not the platter.
class JournalWriter {
 public:
  /// Opens `path` for appending, creating it (with the journal magic)
  /// when absent, and truncating a previously detected torn tail to
  /// `valid_bytes` (pass the ReplayResult's count; pass 0 for a fresh
  /// file — the magic is rewritten).
  static Result<std::unique_ptr<JournalWriter>> Open(
      const std::string& path, int64_t valid_bytes, FsyncPolicy policy,
      size_t group_commit_bytes);

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one record. With kEachRecord the record is durable on
  /// return; with kGroupCommit a sync fires once the group fills.
  Status Append(std::string_view payload);

  /// fsyncs everything appended so far. After OK, every prior Append
  /// is acknowledged durable.
  Status Sync();

  /// Total file size including magic (what recovery would scan).
  int64_t size_bytes() const;
  /// Bytes covered by the last successful fsync.
  int64_t synced_bytes() const;
  /// Records appended through this writer.
  int64_t records_appended() const;

 private:
  JournalWriter(net::UniqueFd fd, int64_t size, FsyncPolicy policy,
                size_t group_commit_bytes)
      : fd_(std::move(fd)),
        policy_(policy),
        group_commit_bytes_(group_commit_bytes),
        size_bytes_(size),
        synced_bytes_(size) {}

  Status SyncLocked();

  net::UniqueFd fd_;
  FsyncPolicy policy_;
  size_t group_commit_bytes_;
  mutable std::mutex mu_;
  int64_t size_bytes_ = 0;
  int64_t synced_bytes_ = 0;
  int64_t records_ = 0;
};

}  // namespace raqo::persist

#endif  // RAQO_PERSIST_JOURNAL_H_
