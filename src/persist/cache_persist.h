#ifndef RAQO_PERSIST_CACHE_PERSIST_H_
#define RAQO_PERSIST_CACHE_PERSIST_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/json.h"
#include "common/result.h"
#include "common/status.h"
#include "core/plan_cache.h"
#include "persist/journal.h"

namespace raqo::persist {

/// Renders one logical cache entry as the JSON payload stored in journal
/// records, snapshot records, and cache_dump wire frames. Doubles go
/// through JsonNumber (%.17g), which round-trips every finite double
/// exactly — serialize + parse + re-Insert rebuilds bit-identical cache
/// state, the property the whole persistence design rests on.
std::string SerializeCacheEntry(const std::string& model,
                                const core::CachedResourcePlan& plan);

/// Inverse of SerializeCacheEntry. InvalidArgument on malformed JSON or
/// missing fields.
Result<core::CacheEntryRecord> ParseCacheEntry(std::string_view payload);
/// Same, from an already-parsed document (the wire path parses whole
/// cache_dump/cache_load messages and hands the entry objects here, so
/// disk and wire agree on the entry schema by construction).
Result<core::CacheEntryRecord> ParseCacheEntry(const JsonValue& doc);

/// Knobs for the durable cache (docs/PERSISTENCE.md).
struct PersistOptions {
  /// Data directory; created (with parents) when absent. The layer owns
  /// two files inside it: `cache.snapshot` and `cache.journal`.
  std::string dir;
  /// When journal appends hit the disk (journal.h).
  FsyncPolicy fsync_policy = FsyncPolicy::kGroupCommit;
  /// Group-commit granularity: one fsync per this many appended bytes.
  size_t group_commit_bytes = 64 * 1024;
  /// Compact (snapshot + truncate journal) once the journal grows past
  /// this many bytes; 0 disables automatic compaction (explicit
  /// Compact() still works).
  int64_t compact_threshold_bytes = 4 << 20;
};

/// What recovery found on disk.
struct RecoveryStats {
  int64_t snapshot_entries = 0;  ///< entries replayed from the snapshot
  int64_t journal_records = 0;   ///< records replayed from the journal
  int64_t skipped_records = 0;   ///< records that failed to parse
  bool torn_tail = false;        ///< journal ended in a torn/corrupt tail
  int64_t recovery_ms = 0;       ///< wall time of the whole replay
};

/// Durable plan cache: journals every Insert as a WAL record and
/// periodically folds journal + cache into a crash-atomic snapshot.
///
/// Lifecycle: `Open` replays snapshot + journal into the cache (so a
/// restarted node resumes at its pre-crash hit rate), then installs
/// itself as the cache's event listener; `Close` (or destruction) syncs
/// and detaches. One instance per cache; all methods are thread-safe.
///
/// Durability contract: an insert is *acknowledged durable* once a
/// successful sync covers its journal record — under kEachRecord that is
/// every insert, under kGroupCommit whenever the group fills or Sync()
/// returns OK. Records written but not yet synced survive process
/// crashes (the page cache persists) but not power loss.
class CachePersistence : public core::CacheEventListener {
 public:
  /// Creates `opts.dir` when needed, replays any snapshot and journal
  /// into `*cache`, truncates a torn journal tail, and attaches to the
  /// cache as its event listener. The cache must outlive the returned
  /// object; a populated cache gains the recovered entries on top of
  /// what it holds (pass a fresh cache for exact pre-crash state).
  static Result<std::unique_ptr<CachePersistence>> Open(
      const PersistOptions& opts, core::ResourcePlanCache* cache);

  ~CachePersistence() override;

  CachePersistence(const CachePersistence&) = delete;
  CachePersistence& operator=(const CachePersistence&) = delete;

  /// CacheEventListener: journals the insert; called by the cache with
  /// no cache lock held. A failed append is counted and remembered (see
  /// last_error()) but never propagates into the planner.
  void OnInsert(const std::string& model,
                const core::CachedResourcePlan& plan) override;

  /// fsyncs the journal: on OK every prior insert is acknowledged
  /// durable.
  Status Sync();

  /// Snapshots the cache (crash-atomic file replace) and truncates the
  /// journal. Replay cost collapses from O(journal) to O(cache).
  Status Compact();

  /// Sync + detach from the cache. Idempotent; called by the destructor.
  Status Close();

  RecoveryStats recovery_stats() const { return recovery_; }
  /// Journal size in bytes right now (magic included).
  int64_t journal_bytes() const;
  /// First error any background append/sync hit since Open (OK when
  /// none). Sticky until read_and_clear_last_error().
  Status last_error() const;
  Status read_and_clear_last_error();
  int64_t compactions() const;

  std::string journal_path() const;
  std::string snapshot_path() const;

 private:
  CachePersistence(PersistOptions opts, core::ResourcePlanCache* cache);

  /// Replays one record stream (snapshot or journal) into the cache.
  /// Returns how many records inserted; parse failures are skipped and
  /// counted into `recovery_.skipped_records`.
  int64_t ReplayInto(const std::vector<std::string>& payloads);

  Status CompactLocked();
  void NoteError(const Status& s);

  const PersistOptions opts_;
  core::ResourcePlanCache* const cache_;
  RecoveryStats recovery_;

  /// Guards the journal writer (swapped during compaction) and the
  /// error slot. OnInsert serializes on this — the cache already fires
  /// listeners outside its own locks, so the journal mutex nests inside
  /// nothing.
  mutable std::mutex mu_;
  std::unique_ptr<JournalWriter> journal_;
  Status last_error_;
  int64_t compactions_ = 0;
  bool closed_ = false;
};

}  // namespace raqo::persist

#endif  // RAQO_PERSIST_CACHE_PERSIST_H_
